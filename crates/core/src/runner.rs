//! The measurement harness: solo runs, co-scheduled pairs, and
//! dynamically-partitioned pairs.
//!
//! Placement follows §5: each application gets 4 threads on 2 dedicated
//! cores (both hyperthreads active) — foreground on cores 0–1 (hardware
//! threads 0–3), background on cores 2–3 (hardware threads 4–7).
//! Applications that cannot use 4 threads (SPEC, microbenchmarks) occupy
//! only the threads they can fill, exactly as `taskset` pinning would.

use crate::dynamic::{DynamicConfig, DynamicPartitioner};
use crate::policy::PartitionPolicy;
use serde::{Deserialize, Serialize};
use waypart_energy::{EnergyBreakdown, EnergyMeter, PowerModel};
use waypart_perfmon::{MpkiSeries, Sampler};
use waypart_sim::config::MachineConfig;
use waypart_sim::counters::HwCounters;
use waypart_sim::machine::{Machine, QuantumActivity};
use waypart_sim::msr::PrefetcherMask;
use waypart_sim::stream::{AccessStream, SharedTrace};
use waypart_sim::{Cycles, WayMask};
use waypart_telemetry::{self as telemetry, Event, Stamp};
use waypart_workloads::{AppSpec, Scale};

/// Opens a `runner.run` telemetry span for a fresh run. Claims a new sim
/// track first: every run's cycle clock restarts at 0, so runs must not
/// share a track or their spans would overlap in trace viewers.
fn run_span_begin(kind: &'static str, fg: &AppSpec, bg: Option<&AppSpec>) {
    if !telemetry::sink_attached() {
        return;
    }
    telemetry::begin_sim_track();
    telemetry::emit_with(|| {
        let ev = Event::begin("runner.run", Stamp::Cycles(0))
            .field("kind", kind)
            .field("fg", fg.name);
        match bg {
            Some(bg) => ev.field("bg", bg.name),
            None => ev,
        }
    });
}

/// Closes the current run's `runner.run` span and, on telemetry builds,
/// emits the hierarchy's per-level tallies as a `sim.tallies` summary.
fn run_span_end(machine: &Machine, quanta: u64, reallocations: u64) {
    telemetry::emit_with(|| {
        Event::end("runner.run", Stamp::Cycles(machine.now()))
            .field("quanta", quanta)
            .field("reallocations", reallocations)
    });
    #[cfg(feature = "telemetry")]
    telemetry::emit_with(|| {
        let tallies = machine.tallies();
        let mut ev = Event::instant("sim.tallies", Stamp::Cycles(machine.now()));
        for (key, value) in tallies.entries() {
            ev = ev.field(key, value);
        }
        ev
    });
    // Per-level latency percentiles from the hierarchy's histograms.
    // Event fields are scalar-only, so each level gets its own instant.
    #[cfg(feature = "telemetry")]
    for level in waypart_sim::hierarchy::HitLevel::all() {
        telemetry::emit_with(|| {
            let h = &machine.latency_hists()[level.index()];
            Event::instant("sim.latency", Stamp::Cycles(machine.now()))
                .field("level", level.name())
                .field("count", h.count())
                .field("min", h.min())
                .field("p50", h.p50())
                .field("p90", h.p90())
                .field("p99", h.p99())
                .field("max", h.max())
                .field("mean", h.mean())
        });
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = machine;
}

/// Emits one `sim.occupancy` counter describing who holds the LLC right
/// now: per-core resident line counts plus the current way split. Fired
/// once per closed sampling window of a dynamically-observed pair run —
/// the machine-readable form of the paper's Fig 12 occupancy timeline.
/// Pure observation (reads only), so it needs no feature gate: without a
/// sink the closure never runs.
fn emit_occupancy(machine: &Machine) {
    /// Field keys for up to 8 cores (the sim tops out at 4 + SMT).
    const OCC_KEYS: [&str; 8] =
        ["occ_c0", "occ_c1", "occ_c2", "occ_c3", "occ_c4", "occ_c5", "occ_c6", "occ_c7"];
    telemetry::emit_with(|| {
        let cfg = machine.config();
        let cores = cfg.cores.min(OCC_KEYS.len());
        let llc_lines = (cfg.llc.size_bytes / cfg.llc.line_bytes) as u64;
        let mut ev = Event::counter("sim.occupancy", Stamp::Cycles(machine.now()))
            .field("llc_lines", llc_lines)
            .field("fg_ways", machine.way_mask(0).count() as u64)
            .field("total_ways", cfg.llc.ways as u64);
        for (core, key) in OCC_KEYS.iter().enumerate().take(cores) {
            ev = ev.field(*key, machine.llc_occupancy_of(core) as u64);
        }
        ev
    });
}

/// Foreground address-space id.
pub const FG_ASID: u16 = 1;
/// Background address-space id.
pub const BG_ASID: u16 = 2;

/// Engine fidelity: exact interval simulation, or SMARTS-style systematic
/// sampling that alternates detailed windows with rate-extrapolated
/// fast-forward windows (see DESIGN.md §5e for the error model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FidelityMode {
    /// Every quantum runs the full engine. The default; byte-identical to
    /// the pre-fidelity engine.
    Exact,
    /// Periodic schedule: each period runs `detail_quanta` detailed quanta
    /// (the first doubles as the warming window after a skip) followed by
    /// `skip_quanta` fast-forwarded quanta extrapolated from each thread's
    /// most recent detailed rates.
    Sampled {
        /// Detailed quanta per period (≥ 1).
        detail_quanta: u32,
        /// Fast-forwarded quanta per period.
        skip_quanta: u32,
    },
}

/// The engine action for one quantum under a fidelity schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantumStep {
    /// Full engine; counter deltas become the thread's extrapolation rates.
    Measure,
    /// Full engine to re-warm cache state after a skip, but state-dependent
    /// counters are replaced by rate extrapolation and rates are not
    /// recorded (the post-skip miss burst is a sampling artifact).
    Warm,
    /// Rate-extrapolated skip: no accesses are simulated.
    FastForward,
}

impl FidelityMode {
    /// The default sampled schedule: one measurement quantum followed by
    /// seven fast-forwarded quanta per period. Chosen from the measured
    /// error grid at `test` scale (see DESIGN.md §5e): the longest skip
    /// whose headline-pair MPKI error stays inside the documented 2%
    /// bound. Longer skips sample faster but let fast-forward cache
    /// staleness inflate the measured miss rates.
    pub fn sampled_default() -> Self {
        FidelityMode::Sampled { detail_quanta: 1, skip_quanta: 7 }
    }

    /// The engine action for quantum `index` (0-based within a run). Each
    /// sampled period runs its detailed window first — warming quanta
    /// followed by one measurement quantum — then the skip, so a fresh
    /// machine always measures real rates before the first fast-forward.
    #[inline]
    pub fn step(&self, index: u64) -> QuantumStep {
        match *self {
            FidelityMode::Exact => QuantumStep::Measure,
            FidelityMode::Sampled { detail_quanta, skip_quanta } => {
                let detail = u64::from(detail_quanta).max(1);
                let period = detail + u64::from(skip_quanta);
                let pos = index % period;
                if pos + 1 == detail {
                    QuantumStep::Measure
                } else if pos < detail {
                    QuantumStep::Warm
                } else {
                    QuantumStep::FastForward
                }
            }
        }
    }

    /// Whether quantum `index` (0-based within a run) runs detailed.
    #[inline]
    pub fn is_detailed(&self, index: u64) -> bool {
        self.step(index) != QuantumStep::FastForward
    }

    /// A fresh per-run scheduler for this mode.
    pub fn scheduler(&self) -> QuantumScheduler {
        QuantumScheduler {
            mode: *self,
            warming_up: matches!(self, FidelityMode::Sampled { .. }),
            warm_quanta: 0,
            ewma_primed: false,
            ewma: 0.0,
            stable: 0,
            pos: 0,
        }
    }
}

/// Per-run schedule state for a fidelity mode: an *adaptive* detailed
/// warm-up prefix, the periodic detailed/fast-forward pattern of
/// [`FidelityMode::step`], and adaptive *re*-warming on traffic regime
/// changes.
///
/// Why adaptive: a run's opening quanta are dominated by compulsory
/// fills — the caches are empty and every working-set line misses.
/// Extrapolating rates measured inside that transient multiplies the
/// warm-up misses by the skip ratio, which at small scales can inflate
/// MPKI severalfold. The scheduler therefore runs every quantum detailed
/// until per-quantum DRAM traffic (compulsory fills land there) settles:
/// once the traffic stays within ±25% of its EWMA for 4 consecutive
/// quanta (and at least [`QuantumScheduler::MIN_WARMUP`] quanta have
/// run), steady state has been reached and sampling begins — directly
/// with a skip, since the caches are maximally warm.
///
/// Why re-warming: phase-changing applications (`429.mcf` is the
/// paper's showcase) repeat the cold-start problem at every phase
/// boundary — the new phase's working set misses wholesale, and a
/// sampled run that keeps extrapolating through that transient inherits
/// the same severalfold bias mid-run. Detailed quanta keep feeding the
/// traffic EWMA; when one lands far outside the band (>100% deviation),
/// the scheduler drops back into detailed warm-up until the new phase's
/// traffic settles. Stable phases sample aggressively; transitions are
/// simulated exactly, once, just as an exact run pays them once.
///
/// Every criterion is a pure function of simulation state, so sampled
/// runs stay deterministic, and a run whose traffic never settles simply
/// stays detailed (exact results, no speedup — the honest failure mode).
#[derive(Debug, Clone)]
pub struct QuantumScheduler {
    mode: FidelityMode,
    /// Still inside a detailed warm-up (initial or re-triggered).
    warming_up: bool,
    /// Detailed quanta run so far during the current warm-up.
    warm_quanta: u64,
    /// Whether `ewma` has been seeded by a first observation.
    ewma_primed: bool,
    /// EWMA of per-quantum DRAM line transfers (α = 0.25).
    ewma: f64,
    /// Consecutive quanta whose DRAM traffic sat inside the EWMA band.
    stable: u32,
    /// Position within the periodic schedule once warm-up has ended.
    pos: u64,
}

impl QuantumScheduler {
    /// Minimum detailed quanta before sampling may (re)begin.
    const MIN_WARMUP: u64 = 8;
    /// Consecutive in-band quanta required to declare steady state. Phase
    /// transients decay with quasi-stable plateaus several quanta long;
    /// a short stability run can mistake one for steady state and exit
    /// warm-up with elevated rates, so the run must be longer than the
    /// plateaus observed in practice.
    const STABLE_QUANTA: u32 = 8;

    /// Advances `machine` by one quantum at the scheduled fidelity.
    pub fn step(&mut self, machine: &mut Machine) -> QuantumActivity {
        if self.warming_up {
            let act = machine.run_quantum();
            self.observe_warmup(act.dram_lines);
            return act;
        }
        let kind = match self.mode {
            FidelityMode::Exact => QuantumStep::Measure,
            FidelityMode::Sampled { .. } => {
                let kind = self.mode.step(self.pos);
                self.pos += 1;
                kind
            }
        };
        match kind {
            QuantumStep::Measure => {
                let act = machine.run_quantum();
                self.observe_steady(act.dram_lines);
                act
            }
            QuantumStep::Warm => machine.run_quantum_warming(),
            QuantumStep::FastForward => machine.fast_forward_quantum(),
        }
    }

    /// The stability band around the traffic EWMA, with an absolute floor
    /// so near-idle traffic (a handful of lines per quantum) can't pin
    /// the scheduler in either state.
    fn band(&self) -> f64 {
        (self.ewma * 0.25).max(4.0)
    }

    fn observe_warmup(&mut self, dram_lines: u64) {
        let FidelityMode::Sampled { detail_quanta, .. } = self.mode else {
            return;
        };
        let d = dram_lines as f64;
        self.warm_quanta += 1;
        if !self.ewma_primed {
            self.ewma_primed = true;
            self.ewma = d;
            return;
        }
        self.stable = if (d - self.ewma).abs() <= self.band() { self.stable + 1 } else { 0 };
        self.ewma = 0.75 * self.ewma + 0.25 * d;
        if self.warm_quanta >= Self::MIN_WARMUP && self.stable >= Self::STABLE_QUANTA {
            self.warming_up = false;
            // Enter the periodic pattern at its first fast-forward: the
            // warm-up prefix already played the detailed window's role.
            self.pos = u64::from(detail_quanta.max(1));
        }
    }

    fn observe_steady(&mut self, dram_lines: u64) {
        if !matches!(self.mode, FidelityMode::Sampled { .. }) {
            return;
        }
        let d = dram_lines as f64;
        // >100% deviation from the running average: a traffic regime
        // change (phase boundary, controller reallocation), not noise.
        // The absolute floor mirrors `band()`'s: a near-idle run (EWMA of
        // a handful of lines) must still re-warm when a phase boundary
        // pushes a measured quantum to tens of lines — post-transition
        // quanta are throughput-capped (stale-cache stalls limit retired
        // instructions), so the absolute traffic stays modest even while
        // the per-instruction miss rate explodes.
        if (d - self.ewma).abs() > self.ewma.max(16.0) {
            self.warming_up = true;
            self.warm_quanta = 0;
            self.stable = 0;
            return;
        }
        self.ewma = 0.75 * self.ewma + 0.25 * d;
    }
}

impl Default for FidelityMode {
    fn default() -> Self {
        FidelityMode::Exact
    }
}

/// Everything a measurement run needs.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Machine description (pair its capacity scale with `scale`).
    pub machine: MachineConfig,
    /// Workload scale preset.
    pub scale: Scale,
    /// Power model for energy metering.
    pub power: PowerModel,
    /// Base RNG seed; streams derive theirs deterministically.
    pub seed: u64,
    /// Counter sampling interval in cycles (the "100 ms" analog, scaled
    /// with instruction volume so runs see a comparable window count).
    pub sample_interval: Cycles,
    /// Safety limit on quanta per run.
    pub max_quanta: u64,
    /// Engine fidelity. [`FidelityMode::Exact`] unless explicitly opted
    /// into sampling.
    pub fidelity: FidelityMode,
}

// Hand-written (de)serialization: the `fidelity` field is *omitted* when
// `Exact`, so an exact-mode config renders to byte-identical JSON as before
// the field existed. That keeps every committed run-cache entry and golden
// valid (their keys hash this JSON), while sampled configs serialize the
// field and therefore can never collide with exact-mode cache entries.
// (The vendored serde_derive has no `#[serde(skip_serializing_if)]`.)
impl Serialize for RunnerConfig {
    fn to_value(&self) -> serde::json::Value {
        let mut fields = vec![
            ("machine".to_owned(), self.machine.to_value()),
            ("scale".to_owned(), self.scale.to_value()),
            ("power".to_owned(), self.power.to_value()),
            ("seed".to_owned(), self.seed.to_value()),
            ("sample_interval".to_owned(), self.sample_interval.to_value()),
            ("max_quanta".to_owned(), self.max_quanta.to_value()),
        ];
        if self.fidelity != FidelityMode::Exact {
            fields.push(("fidelity".to_owned(), self.fidelity.to_value()));
        }
        serde::json::Value::Obj(fields)
    }
}

impl Deserialize for RunnerConfig {
    fn from_value(v: &serde::json::Value) -> Result<Self, serde::json::Error> {
        Ok(RunnerConfig {
            machine: MachineConfig::from_value(v.field("machine")?)?,
            scale: Scale::from_value(v.field("scale")?)?,
            power: PowerModel::from_value(v.field("power")?)?,
            seed: u64::from_value(v.field("seed")?)?,
            sample_interval: Cycles::from_value(v.field("sample_interval")?)?,
            max_quanta: u64::from_value(v.field("max_quanta")?)?,
            // Absent in every pre-fidelity config: default to Exact.
            fidelity: match v.field("fidelity") {
                Ok(f) => FidelityMode::from_value(f)?,
                Err(_) => FidelityMode::Exact,
            },
        })
    }
}

impl RunnerConfig {
    /// Full-size platform (6 MB LLC) and workloads.
    pub fn full() -> Self {
        RunnerConfig {
            machine: MachineConfig::sandy_bridge(),
            scale: Scale::FULL,
            power: PowerModel::sandy_bridge(),
            seed: 0xC00C,
            sample_interval: 2_000_000,
            max_quanta: 4_000_000,
            fidelity: FidelityMode::Exact,
        }
    }

    /// Bench scale: 1.5 MB LLC, 1/64 instruction volume.
    pub fn bench() -> Self {
        let mut machine = MachineConfig::scaled(4);
        machine.quantum_cycles = 50_000;
        RunnerConfig {
            machine,
            scale: Scale::BENCH,
            power: PowerModel::sandy_bridge(),
            seed: 0xC00C,
            sample_interval: 400_000,
            max_quanta: 1_000_000,
            fidelity: FidelityMode::Exact,
        }
    }

    /// Like [`Self::test`] but with a modulo-indexed LLC, as page
    /// coloring requires (the default hashed index defeats coloring).
    pub fn test_colored() -> Self {
        let mut cfg = Self::test();
        cfg.machine.llc.index = waypart_sim::addr::IndexHash::Modulo;
        cfg
    }

    /// Test scale: 96 KB LLC, tiny instruction volume, fine quanta.
    pub fn test() -> Self {
        let mut machine = MachineConfig::scaled(64);
        machine.quantum_cycles = 20_000;
        RunnerConfig {
            machine,
            scale: Scale::TEST,
            power: PowerModel::sandy_bridge(),
            seed: 0xC00C,
            // Large enough that window-to-window MPKI shot noise stays
            // below the controller's THR3 (5%).
            sample_interval: 80_000,
            max_quanta: 300_000,
            fidelity: FidelityMode::Exact,
        }
    }
}

/// Result of a solo (uncontended) run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoloResult {
    /// Cycles until the application finished.
    pub cycles: Cycles,
    /// Aggregated counters of all the app's threads.
    pub counters: HwCounters,
    /// Energy over the run.
    pub energy: EnergyBreakdown,
    /// Windowed MPKI trace.
    pub mpki: MpkiSeries,
    /// True if the quantum limit cut the run short.
    pub truncated: bool,
}

/// Result of a co-scheduled run with a continuously-running background.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairResult {
    /// Cycles until the foreground finished.
    pub fg_cycles: Cycles,
    /// Foreground counters at completion.
    pub fg_counters: HwCounters,
    /// Background instructions retired while the foreground ran.
    pub bg_instructions: u64,
    /// Background throughput in instructions per cycle.
    pub bg_rate: f64,
    /// Energy until foreground completion.
    pub energy: EnergyBreakdown,
    /// Foreground windowed MPKI trace.
    pub fg_mpki: MpkiSeries,
    /// Foreground way-allocation trace (cycle, ways) — constant for static
    /// policies, the controller's decisions for dynamic runs.
    pub fg_ways_trace: Vec<(Cycles, usize)>,
    /// Mask reprogrammings performed (dynamic runs).
    pub reallocations: u64,
    /// True if the quantum limit cut the run short.
    pub truncated: bool,
}

/// Result of running a pair where both applications execute exactly once.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BothOnceResult {
    /// Cycles until *both* applications finished.
    pub total_cycles: Cycles,
    /// Foreground completion time.
    pub fg_cycles: Cycles,
    /// Background completion time.
    pub bg_cycles: Cycles,
    /// Energy until both finished.
    pub energy: EnergyBreakdown,
    /// True if the quantum limit cut the run short.
    pub truncated: bool,
}

/// A mask-reprogramming controller driving a co-scheduled run.
enum Controller {
    /// The paper's Algorithm 6.2.
    Paper(DynamicPartitioner),
    /// The UCP baseline (§7).
    Ucp(crate::ucp::UcpController),
    /// The IPC-floor QoS controller (refs [20][26]).
    Qos(crate::qos::QosController),
}

impl Controller {
    fn reallocations(&self) -> u64 {
        match self {
            Controller::Paper(c) => c.reallocations(),
            Controller::Ucp(c) => c.repartitions(),
            Controller::Qos(c) => c.reallocations(),
        }
    }
}

/// Per-policy state of one [`Runner::run_pair_batch`] lockstep lane —
/// the loop-local variables of `run_pair_inner`'s static path, boxed up
/// so `run_lockstep` can advance lanes a quantum at a time.
struct PairLane {
    machine: Machine,
    meter: EnergyMeter,
    sampler: Sampler,
    mpki: MpkiSeries,
    ways_trace: Vec<(Cycles, usize)>,
    quanta: u64,
    sched: QuantumScheduler,
}

impl PairLane {
    /// Packages the lane into the `PairResult` the sequential path would
    /// have produced.
    fn finish(&mut self) -> PairResult {
        let truncated = !self.machine.app_done(FG_ASID);
        let fg_cycles = self.machine.finish_time(FG_ASID).unwrap_or(self.machine.now());
        let bg_counters = self.machine.app_counters(BG_ASID);
        PairResult {
            fg_cycles,
            fg_counters: self.machine.app_counters(FG_ASID),
            bg_instructions: bg_counters.instructions,
            bg_rate: bg_counters.instructions as f64 / fg_cycles.max(1) as f64,
            energy: self.meter.total(),
            fg_mpki: std::mem::replace(&mut self.mpki, MpkiSeries::new()),
            fg_ways_trace: std::mem::take(&mut self.ways_trace),
            reallocations: 0,
            truncated,
        }
    }
}

/// The measurement harness.
#[derive(Debug, Clone)]
pub struct Runner {
    cfg: RunnerConfig,
}

impl Runner {
    /// A runner over `cfg`.
    pub fn new(cfg: RunnerConfig) -> Self {
        Runner { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RunnerConfig {
        &self.cfg
    }

    fn fresh_machine(&self) -> Machine {
        Machine::new(self.cfg.machine.clone())
    }

    fn meter(&self) -> EnergyMeter {
        EnergyMeter::new(self.cfg.power, self.cfg.machine.freq_ghz)
    }

    /// Attaches `spec` with up to `threads` threads starting at hardware
    /// thread `first_ht`, as `taskset` would.
    fn attach_app(&self, machine: &mut Machine, spec: &AppSpec, threads: usize, first_ht: usize, asid: u16, endless: bool) {
        let effective = spec.effective_threads(threads);
        for t in 0..effective {
            let stream = if endless {
                spec.endless_stream(effective, t, asid, self.cfg.scale, self.cfg.seed ^ u64::from(asid))
            } else {
                spec.thread_stream(effective, t, asid, self.cfg.scale, self.cfg.seed ^ u64::from(asid))
            };
            machine.attach(first_ht + t, asid, Box::new(stream));
        }
    }

    /// Runs `spec` alone with `threads` threads and `ways` LLC ways, all
    /// prefetchers enabled.
    pub fn run_solo(&self, spec: &AppSpec, threads: usize, ways: usize) -> SoloResult {
        self.run_solo_configured(spec, threads, ways, PrefetcherMask::all_enabled())
    }

    /// Runs `spec` alone under an explicit prefetcher configuration
    /// (Figure 3's experiment).
    pub fn run_solo_configured(
        &self,
        spec: &AppSpec,
        threads: usize,
        ways: usize,
        prefetchers: PrefetcherMask,
    ) -> SoloResult {
        let mut machine = self.fresh_machine();
        machine.set_prefetchers(prefetchers);
        let mask = WayMask::contiguous(0, ways);
        for core in 0..self.cfg.machine.cores {
            machine.set_way_mask(core, mask);
        }
        self.attach_app(&mut machine, spec, threads, 0, FG_ASID, false);
        run_span_begin("solo", spec, None);

        let mut meter = self.meter();
        let mut sampler = Sampler::new(self.cfg.sample_interval);
        let mut mpki = MpkiSeries::new();
        let mut quanta = 0u64;
        let mut sched = self.cfg.fidelity.scheduler();
        while !machine.app_done(FG_ASID) && quanta < self.cfg.max_quanta {
            let act = sched.step(&mut machine);
            meter.on_quantum(&act);
            if let Some(s) = sampler.observe(machine.now(), machine.app_counters(FG_ASID)) {
                mpki.push_sample(&s);
            }
            quanta += 1;
        }
        let truncated = !machine.app_done(FG_ASID);
        run_span_end(&machine, quanta, 0);
        SoloResult {
            cycles: machine.finish_time(FG_ASID).unwrap_or(machine.now()),
            counters: machine.app_counters(FG_ASID),
            energy: meter.total(),
            mpki,
            truncated,
        }
    }

    /// Runs `fg` (4 threads, cores 0–1) against a continuously-running
    /// `bg` (4 threads, cores 2–3) under a static policy. The run ends
    /// when the foreground finishes (Figs 8, 9, 13).
    pub fn run_pair_endless_bg(&self, fg: &AppSpec, bg: &AppSpec, policy: PartitionPolicy) -> PairResult {
        let (fg_mask, bg_mask) = policy.masks(self.cfg.machine.llc.ways);
        self.run_pair_inner(fg, bg, fg_mask, bg_mask, None)
    }

    /// Runs the same (fg, bg) pairing under each static `policy` and
    /// returns the results in policy order, equal to what
    /// [`Self::run_pair_endless_bg`] would produce per policy.
    ///
    /// When eligible, the runs execute as one lockstep batch
    /// ([`crate::sweep::run_lockstep`]): allocation never feeds back into
    /// workload generation, so all lanes consume identical event streams
    /// and share one generator via [`SharedTrace`], paying stream
    /// generation once instead of once per policy. The batch falls back
    /// to sequential runs when sharing would change observable behavior
    /// or not pay for itself: a single policy, sampled fidelity (the
    /// fast-forward path skips through private stream state), an attached
    /// telemetry sink (per-run spans would interleave across lanes), or
    /// full scale (the window for 13 lanes over a full-length run is
    /// cheap, but full runs are rare and exactness there is sacred — keep
    /// the battle-tested path).
    pub fn run_pair_batch(&self, fg: &AppSpec, bg: &AppSpec, policies: &[PartitionPolicy]) -> Vec<PairResult> {
        let lockstep_ok = policies.len() > 1
            && self.cfg.fidelity == FidelityMode::Exact
            && !telemetry::sink_attached()
            && self.cfg.scale.work_div >= Scale::BENCH.work_div;
        if !lockstep_ok {
            return policies.iter().map(|&p| self.run_pair_endless_bg(fg, bg, p)).collect();
        }

        let cores = self.cfg.machine.cores;
        let tpc = self.cfg.machine.threads_per_core;
        let half_hts = cores / 2 * tpc;
        let ways = self.cfg.machine.llc.ways;
        let mut machines: Vec<Machine> = policies
            .iter()
            .map(|p| {
                let (fg_mask, bg_mask) = p.masks(ways);
                let mut machine = self.fresh_machine();
                for core in 0..cores / 2 {
                    machine.set_way_mask(core, fg_mask);
                }
                for core in cores / 2..cores {
                    machine.set_way_mask(core, bg_mask);
                }
                machine
            })
            .collect();
        self.attach_app_shared(&mut machines, fg, half_hts, 0, FG_ASID, false);
        self.attach_app_shared(&mut machines, bg, half_hts, half_hts, BG_ASID, true);

        let lanes: Vec<PairLane> = machines
            .into_iter()
            .zip(policies)
            .map(|(machine, p)| {
                let (fg_mask, _) = p.masks(ways);
                PairLane {
                    machine,
                    meter: self.meter(),
                    sampler: Sampler::new(self.cfg.sample_interval),
                    mpki: MpkiSeries::new(),
                    ways_trace: vec![(0, fg_mask.count())],
                    quanta: 0,
                    sched: self.cfg.fidelity.scheduler(),
                }
            })
            .collect();

        // One quantum per lane per round — the same loop body as
        // `run_pair_inner`'s static path, minus telemetry (absent by the
        // eligibility guard above).
        crate::sweep::run_lockstep(lanes, |lane| {
            if lane.machine.app_done(FG_ASID) || lane.quanta >= self.cfg.max_quanta {
                return Some(lane.finish());
            }
            let act = lane.sched.step(&mut lane.machine);
            lane.meter.on_quantum(&act);
            if let Some(s) = lane.sampler.observe(lane.machine.now(), lane.machine.app_counters(FG_ASID)) {
                lane.mpki.push_sample(&s);
            }
            lane.quanta += 1;
            None
        })
    }

    /// Like [`Self::attach_app`], but attaches one *shared* generator per
    /// thread across all `machines`: each machine gets a
    /// [`SharedTrace`] reader replaying the identical event sequence.
    fn attach_app_shared(
        &self,
        machines: &mut [Machine],
        spec: &AppSpec,
        threads: usize,
        first_ht: usize,
        asid: u16,
        endless: bool,
    ) {
        let effective = spec.effective_threads(threads);
        for t in 0..effective {
            let src: Box<dyn AccessStream> = if endless {
                Box::new(spec.endless_stream(effective, t, asid, self.cfg.scale, self.cfg.seed ^ u64::from(asid)))
            } else {
                Box::new(spec.thread_stream(effective, t, asid, self.cfg.scale, self.cfg.seed ^ u64::from(asid)))
            };
            let readers = SharedTrace::share(src, machines.len());
            for (machine, reader) in machines.iter_mut().zip(readers) {
                machine.attach(first_ht + t, asid, Box::new(reader));
            }
        }
    }

    /// Like [`Self::run_pair_endless_bg`] but with the dynamic controller
    /// (Algorithm 6.2) reprogramming the masks at every sampling window.
    pub fn run_pair_dynamic(&self, fg: &AppSpec, bg: &AppSpec, dyn_cfg: DynamicConfig) -> PairResult {
        let ctl = DynamicPartitioner::new(dyn_cfg);
        let m = ctl.masks();
        self.run_pair_inner(fg, bg, m.fg, m.bg, Some(Controller::Paper(ctl)))
    }

    /// Like [`Self::run_pair_endless_bg`] but partitioned by the UCP
    /// baseline (utility monitors + lookahead), for the §7 comparison.
    pub fn run_pair_ucp(&self, fg: &AppSpec, bg: &AppSpec, ucp_cfg: crate::ucp::UcpConfig) -> PairResult {
        let ctl = crate::ucp::UcpController::new(ucp_cfg);
        let (fg_mask, bg_mask) = ctl.masks();
        self.run_pair_inner(fg, bg, fg_mask, bg_mask, Some(Controller::Ucp(ctl)))
    }

    /// Like [`Self::run_pair_endless_bg`] but driven by the IPC-floor QoS
    /// controller (refs [20][26]): guarantee the foreground a fraction of
    /// its uncontended IPC, give the rest to the background.
    pub fn run_pair_qos(&self, fg: &AppSpec, bg: &AppSpec, qos_cfg: crate::qos::QosConfig) -> PairResult {
        let ctl = crate::qos::QosController::new(qos_cfg);
        let (fg_mask, bg_mask) = ctl.masks();
        self.run_pair_inner(fg, bg, fg_mask, bg_mask, Some(Controller::Qos(ctl)))
    }

    fn run_pair_inner(
        &self,
        fg: &AppSpec,
        bg: &AppSpec,
        fg_mask: WayMask,
        bg_mask: WayMask,
        mut controller: Option<Controller>,
    ) -> PairResult {
        let cores = self.cfg.machine.cores;
        let tpc = self.cfg.machine.threads_per_core;
        let half_hts = cores / 2 * tpc;
        let mut machine = self.fresh_machine();
        for core in 0..cores / 2 {
            machine.set_way_mask(core, fg_mask);
        }
        for core in cores / 2..cores {
            machine.set_way_mask(core, bg_mask);
        }
        self.attach_app(&mut machine, fg, half_hts, 0, FG_ASID, false);
        self.attach_app(&mut machine, bg, half_hts, half_hts, BG_ASID, true);
        if matches!(controller, Some(Controller::Ucp(_))) {
            machine.enable_umon();
        }
        let kind = match &controller {
            Some(Controller::Paper(_)) => "pair_dynamic",
            Some(Controller::Ucp(_)) => "pair_ucp",
            Some(Controller::Qos(_)) => "pair_qos",
            None => "pair_static",
        };
        run_span_begin(kind, fg, Some(bg));

        let mut meter = self.meter();
        let mut sampler = Sampler::new(self.cfg.sample_interval);
        let mut mpki = MpkiSeries::new();
        let mut ways_trace = Vec::new();
        ways_trace.push((0, fg_mask.count()));
        let mut quanta = 0u64;
        let mut sched = self.cfg.fidelity.scheduler();
        while !machine.app_done(FG_ASID) && quanta < self.cfg.max_quanta {
            let act = sched.step(&mut machine);
            meter.on_quantum(&act);
            if let Some(s) = sampler.observe(machine.now(), machine.app_counters(FG_ASID)) {
                mpki.push_sample(&s);
                let realloc = match controller.as_mut() {
                    Some(Controller::Paper(ctl)) => {
                        ctl.observe_at(machine.now(), s.mpki()).map(|r| (r.fg, r.bg))
                    }
                    Some(Controller::Qos(ctl)) => ctl.observe(s.window.ipc()),
                    Some(Controller::Ucp(ctl)) => {
                        let fg_curve = Self::umon_curve(&machine, 0..cores / 2);
                        let bg_curve = Self::umon_curve(&machine, cores / 2..cores);
                        let r = ctl.on_window(&fg_curve, &bg_curve);
                        if quanta > 0 && r.is_some() {
                            machine.decay_umons();
                        }
                        r
                    }
                    None => None,
                };
                if let Some((fgm, bgm)) = realloc {
                    for core in 0..cores / 2 {
                        machine.set_way_mask(core, fgm);
                    }
                    for core in cores / 2..cores {
                        machine.set_way_mask(core, bgm);
                    }
                    ways_trace.push((machine.now(), fgm.count()));
                }
                emit_occupancy(&machine);
            }
            quanta += 1;
        }
        let truncated = !machine.app_done(FG_ASID);
        let reallocations = controller.map(|c| c.reallocations()).unwrap_or(0);
        run_span_end(&machine, quanta, reallocations);
        let fg_cycles = machine.finish_time(FG_ASID).unwrap_or(machine.now());
        let bg_counters = machine.app_counters(BG_ASID);
        PairResult {
            fg_cycles,
            fg_counters: machine.app_counters(FG_ASID),
            bg_instructions: bg_counters.instructions,
            bg_rate: bg_counters.instructions as f64 / fg_cycles.max(1) as f64,
            energy: meter.total(),
            fg_mpki: mpki,
            fg_ways_trace: ways_trace,
            reallocations,
            truncated,
        }
    }

    /// Aggregated hits-versus-ways curve over the cores' utility monitors
    /// (index `w` = hits with `w` ways; index 0 is 0).
    fn umon_curve(machine: &Machine, cores: std::ops::Range<usize>) -> Vec<u64> {
        let ways = machine.config().llc.ways;
        let mut curve = vec![0u64; ways + 1];
        for core in cores {
            if let Some(u) = machine.umon(core) {
                for (w, slot) in curve.iter_mut().enumerate() {
                    *slot += u.hits_with_ways(w.min(u.ways()));
                }
            }
        }
        curve
    }

    /// Runs `fg` against `copies` independent, continuously-running copies
    /// of `bg`, each pinned to its own core inside the background
    /// partition — §5.2's "one foreground application and two or more
    /// copies of the background applications" experiment. All background
    /// peers share the background way mask and contend within it.
    ///
    /// # Panics
    /// Panics if `copies` is 0 or exceeds the machine's background cores.
    pub fn run_pair_multi_bg(
        &self,
        fg: &AppSpec,
        bg: &AppSpec,
        copies: usize,
        policy: PartitionPolicy,
    ) -> PairResult {
        let cores = self.cfg.machine.cores;
        let tpc = self.cfg.machine.threads_per_core;
        let bg_cores = cores - cores / 2;
        assert!(copies >= 1 && copies <= bg_cores, "cannot pin {copies} background copies on {bg_cores} cores");
        let (fg_mask, bg_mask) = policy.masks(self.cfg.machine.llc.ways);
        let mut machine = self.fresh_machine();
        for core in 0..cores {
            machine.set_way_mask(core, if core < cores / 2 { fg_mask } else { bg_mask });
        }
        let half_hts = cores / 2 * tpc;
        self.attach_app(&mut machine, fg, half_hts, 0, FG_ASID, false);
        for copy in 0..copies {
            let asid = BG_ASID + copy as u16;
            let first_ht = half_hts + copy * tpc;
            self.attach_app(&mut machine, bg, tpc, first_ht, asid, true);
        }
        run_span_begin("pair_multi_bg", fg, Some(bg));

        let mut meter = self.meter();
        let mut sampler = Sampler::new(self.cfg.sample_interval);
        let mut mpki = MpkiSeries::new();
        let mut quanta = 0u64;
        let mut sched = self.cfg.fidelity.scheduler();
        while !machine.app_done(FG_ASID) && quanta < self.cfg.max_quanta {
            let act = sched.step(&mut machine);
            meter.on_quantum(&act);
            if let Some(s) = sampler.observe(machine.now(), machine.app_counters(FG_ASID)) {
                mpki.push_sample(&s);
            }
            quanta += 1;
        }
        let truncated = !machine.app_done(FG_ASID);
        run_span_end(&machine, quanta, 0);
        let fg_cycles = machine.finish_time(FG_ASID).unwrap_or(machine.now());
        let bg_instructions: u64 =
            (0..copies).map(|c| machine.app_counters(BG_ASID + c as u16).instructions).sum();
        PairResult {
            fg_cycles,
            fg_counters: machine.app_counters(FG_ASID),
            bg_instructions,
            bg_rate: bg_instructions as f64 / fg_cycles.max(1) as f64,
            energy: meter.total(),
            fg_mpki: mpki,
            fg_ways_trace: vec![(0, fg_mask.count())],
            reallocations: 0,
            truncated,
        }
    }

    /// Runs both applications exactly once, concurrently, under a static
    /// policy; the run ends when *both* finish (Figs 10, 11).
    pub fn run_pair_both_once(&self, fg: &AppSpec, bg: &AppSpec, policy: PartitionPolicy) -> BothOnceResult {
        let cores = self.cfg.machine.cores;
        let tpc = self.cfg.machine.threads_per_core;
        let half_hts = cores / 2 * tpc;
        let (fg_mask, bg_mask) = policy.masks(self.cfg.machine.llc.ways);
        let mut machine = self.fresh_machine();
        for core in 0..cores / 2 {
            machine.set_way_mask(core, fg_mask);
        }
        for core in cores / 2..cores {
            machine.set_way_mask(core, bg_mask);
        }
        self.attach_app(&mut machine, fg, half_hts, 0, FG_ASID, false);
        self.attach_app(&mut machine, bg, half_hts, half_hts, BG_ASID, false);
        run_span_begin("pair_both_once", fg, Some(bg));

        let mut meter = self.meter();
        let mut quanta = 0u64;
        let mut sched = self.cfg.fidelity.scheduler();
        while machine.any_active() && quanta < self.cfg.max_quanta {
            let act = sched.step(&mut machine);
            meter.on_quantum(&act);
            quanta += 1;
        }
        let truncated = machine.any_active();
        run_span_end(&machine, quanta, 0);
        BothOnceResult {
            total_cycles: machine.now(),
            fg_cycles: machine.finish_time(FG_ASID).unwrap_or(machine.now()),
            bg_cycles: machine.finish_time(BG_ASID).unwrap_or(machine.now()),
            energy: meter.total(),
            truncated,
        }
    }

    /// Like [`Self::run_pair_endless_bg`] with the background cores
    /// additionally throttled to `bg_mba_percent` of full memory
    /// bandwidth — the §8 future-work bandwidth-QoS knob (Intel MBA's
    /// semantics).
    pub fn run_pair_mba(
        &self,
        fg: &AppSpec,
        bg: &AppSpec,
        policy: PartitionPolicy,
        bg_mba_percent: u8,
    ) -> PairResult {
        let cores = self.cfg.machine.cores;
        let tpc = self.cfg.machine.threads_per_core;
        let half_hts = cores / 2 * tpc;
        let (fg_mask, bg_mask) = policy.masks(self.cfg.machine.llc.ways);
        let mut machine = self.fresh_machine();
        for core in 0..cores {
            machine.set_way_mask(core, if core < cores / 2 { fg_mask } else { bg_mask });
            if core >= cores / 2 {
                machine.set_mba(core, bg_mba_percent);
            }
        }
        self.attach_app(&mut machine, fg, half_hts, 0, FG_ASID, false);
        self.attach_app(&mut machine, bg, half_hts, half_hts, BG_ASID, true);
        run_span_begin("pair_mba", fg, Some(bg));

        let mut meter = self.meter();
        let mut sampler = Sampler::new(self.cfg.sample_interval);
        let mut mpki = MpkiSeries::new();
        let mut quanta = 0u64;
        let mut sched = self.cfg.fidelity.scheduler();
        while !machine.app_done(FG_ASID) && quanta < self.cfg.max_quanta {
            let act = sched.step(&mut machine);
            meter.on_quantum(&act);
            if let Some(s) = sampler.observe(machine.now(), machine.app_counters(FG_ASID)) {
                mpki.push_sample(&s);
            }
            quanta += 1;
        }
        let truncated = !machine.app_done(FG_ASID);
        run_span_end(&machine, quanta, 0);
        let fg_cycles = machine.finish_time(FG_ASID).unwrap_or(machine.now());
        let bg_counters = machine.app_counters(BG_ASID);
        PairResult {
            fg_cycles,
            fg_counters: machine.app_counters(FG_ASID),
            bg_instructions: bg_counters.instructions,
            bg_rate: bg_counters.instructions as f64 / fg_cycles.max(1) as f64,
            energy: meter.total(),
            fg_mpki: mpki,
            fg_ways_trace: vec![(0, fg_mask.count())],
            reallocations: 0,
            truncated,
        }
    }

    /// Runs `fg` against an endless `bg` with the LLC partitioned by
    /// **page coloring** instead of way masks: the foreground owns
    /// `fg_groups` of the 16 color groups, the background the rest. Way
    /// masks stay fully shared. The machine must be configured with a
    /// modulo-indexed LLC (see [`RunnerConfig::colored`]).
    ///
    /// # Panics
    /// Panics if `fg_groups` is 0 or 16, or the LLC is hash-indexed.
    pub fn run_pair_colored(&self, fg: &AppSpec, bg: &AppSpec, fg_groups: usize) -> PairResult {
        use waypart_sim::coloring::ColorAssignment;
        let groups = ColorAssignment::DEFAULT_GROUPS;
        assert!(fg_groups >= 1 && fg_groups < groups, "coloring split {fg_groups}/{groups} leaves a side empty");
        let cores = self.cfg.machine.cores;
        let tpc = self.cfg.machine.threads_per_core;
        let half_hts = cores / 2 * tpc;
        let mut machine = self.fresh_machine();
        machine.enable_coloring(groups);
        let fg_mask = (1u32 << fg_groups) - 1;
        let bg_mask = ((1u32 << groups) - 1) & !fg_mask;
        machine.assign_colors(FG_ASID, fg_mask);
        machine.assign_colors(BG_ASID, bg_mask);
        self.attach_app(&mut machine, fg, half_hts, 0, FG_ASID, false);
        self.attach_app(&mut machine, bg, half_hts, half_hts, BG_ASID, true);
        run_span_begin("pair_colored", fg, Some(bg));

        let mut meter = self.meter();
        let mut sampler = Sampler::new(self.cfg.sample_interval);
        let mut mpki = MpkiSeries::new();
        let mut quanta = 0u64;
        let mut sched = self.cfg.fidelity.scheduler();
        while !machine.app_done(FG_ASID) && quanta < self.cfg.max_quanta {
            let act = sched.step(&mut machine);
            meter.on_quantum(&act);
            if let Some(s) = sampler.observe(machine.now(), machine.app_counters(FG_ASID)) {
                mpki.push_sample(&s);
            }
            quanta += 1;
        }
        let truncated = !machine.app_done(FG_ASID);
        run_span_end(&machine, quanta, 0);
        let fg_cycles = machine.finish_time(FG_ASID).unwrap_or(machine.now());
        let bg_counters = machine.app_counters(BG_ASID);
        PairResult {
            fg_cycles,
            fg_counters: machine.app_counters(FG_ASID),
            bg_instructions: bg_counters.instructions,
            bg_rate: bg_counters.instructions as f64 / fg_cycles.max(1) as f64,
            energy: meter.total(),
            fg_mpki: mpki,
            fg_ways_trace: vec![(0, fg_groups)],
            reallocations: 0,
            truncated,
        }
    }

    /// Runs `spec` (4 threads, cores 0–1) next to the `stream_uncached`
    /// bandwidth hog on core 2 — Figure 4's experiment.
    pub fn run_with_hog(&self, spec: &AppSpec, hog: &AppSpec) -> PairResult {
        let (fg_mask, bg_mask) = PartitionPolicy::Shared.masks(self.cfg.machine.llc.ways);
        let cores = self.cfg.machine.cores;
        let tpc = self.cfg.machine.threads_per_core;
        let half_hts = cores / 2 * tpc;
        let mut machine = self.fresh_machine();
        for core in 0..cores {
            machine.set_way_mask(core, if core < cores / 2 { fg_mask } else { bg_mask });
        }
        self.attach_app(&mut machine, spec, half_hts, 0, FG_ASID, false);
        self.attach_app(&mut machine, hog, 1, half_hts, BG_ASID, true);
        run_span_begin("pair_hog", spec, Some(hog));

        let mut meter = self.meter();
        let mut sampler = Sampler::new(self.cfg.sample_interval);
        let mut mpki = MpkiSeries::new();
        let mut quanta = 0u64;
        let mut sched = self.cfg.fidelity.scheduler();
        while !machine.app_done(FG_ASID) && quanta < self.cfg.max_quanta {
            let act = sched.step(&mut machine);
            meter.on_quantum(&act);
            if let Some(s) = sampler.observe(machine.now(), machine.app_counters(FG_ASID)) {
                mpki.push_sample(&s);
            }
            quanta += 1;
        }
        let truncated = !machine.app_done(FG_ASID);
        run_span_end(&machine, quanta, 0);
        let fg_cycles = machine.finish_time(FG_ASID).unwrap_or(machine.now());
        let bg = machine.app_counters(BG_ASID);
        PairResult {
            fg_cycles,
            fg_counters: machine.app_counters(FG_ASID),
            bg_instructions: bg.instructions,
            bg_rate: bg.instructions as f64 / fg_cycles.max(1) as f64,
            energy: meter.total(),
            fg_mpki: mpki,
            fg_ways_trace: vec![(0, fg_mask.count())],
            reallocations: 0,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waypart_workloads::registry;

    fn runner() -> Runner {
        Runner::new(RunnerConfig::test())
    }

    #[test]
    fn solo_run_completes() {
        let r = runner();
        let spec = registry::by_name("swaptions").unwrap();
        let res = r.run_solo(&spec, 4, 12);
        assert!(!res.truncated, "swaptions truncated");
        assert!(res.cycles > 0);
        assert!(res.counters.instructions > 100_000);
        assert!(res.energy.socket_j > 0.0);
        assert!(res.energy.wall_j > res.energy.socket_j);
    }

    #[test]
    fn solo_runs_are_deterministic() {
        let r = runner();
        let spec = registry::by_name("dedup").unwrap();
        let a = r.run_solo(&spec, 2, 12);
        let b = r.run_solo(&spec, 2, 12);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn more_threads_finish_sooner_for_scalable_app() {
        let r = runner();
        let spec = registry::by_name("blackscholes").unwrap();
        let t1 = r.run_solo(&spec, 1, 12).cycles;
        let t8 = r.run_solo(&spec, 8, 12).cycles;
        assert!(
            (t1 as f64) / (t8 as f64) > 2.5,
            "blackscholes speedup {} too low",
            t1 as f64 / t8 as f64
        );
    }

    #[test]
    fn pair_with_endless_bg_finishes_fg() {
        let r = runner();
        let fg = registry::by_name("dedup").unwrap();
        let bg = registry::by_name("swaptions").unwrap();
        let res = r.run_pair_endless_bg(&fg, &bg, PartitionPolicy::Shared);
        assert!(!res.truncated);
        assert!(res.bg_instructions > 0, "background made no progress");
        assert!(res.bg_rate > 0.0);
    }

    #[test]
    fn partitioning_protects_a_sensitive_foreground() {
        // A cache-hungry foreground next to a thrashing background: the
        // biased split must beat shared on foreground time.
        let r = runner();
        let fg = registry::by_name("471.omnetpp").unwrap();
        let bg = registry::by_name("canneal").unwrap();
        let solo = r.run_solo(&fg, 4, 12).cycles as f64;
        let shared = r.run_pair_endless_bg(&fg, &bg, PartitionPolicy::Shared);
        let biased = r.run_pair_endless_bg(&fg, &bg, PartitionPolicy::Biased { fg_ways: 9 });
        let slow_shared = shared.fg_cycles as f64 / solo;
        let slow_biased = biased.fg_cycles as f64 / solo;
        assert!(
            slow_biased < slow_shared + 1e-9,
            "biased ({slow_biased:.3}) not better than shared ({slow_shared:.3})"
        );
    }

    #[test]
    fn dynamic_controller_reallocates() {
        let r = runner();
        let fg = registry::by_name("429.mcf").unwrap(); // phase-changing
        let bg = registry::by_name("swaptions").unwrap();
        let res = r.run_pair_dynamic(&fg, &bg, DynamicConfig::paper());
        assert!(!res.truncated);
        assert!(res.reallocations > 0, "controller never acted");
        assert!(res.fg_ways_trace.len() > 1);
        for &(_, ways) in &res.fg_ways_trace {
            assert!((2..=11).contains(&ways), "allocation {ways} out of bounds");
        }
    }

    #[test]
    fn both_once_tracks_individual_finishes() {
        let r = runner();
        let fg = registry::by_name("swaptions").unwrap();
        let bg = registry::by_name("dedup").unwrap();
        let res = r.run_pair_both_once(&fg, &bg, PartitionPolicy::Fair);
        assert!(!res.truncated);
        assert!(res.fg_cycles <= res.total_cycles);
        assert!(res.bg_cycles <= res.total_cycles);
        assert_eq!(res.total_cycles, res.fg_cycles.max(res.bg_cycles));
    }

    #[test]
    fn hog_slows_bandwidth_sensitive_app() {
        let r = runner();
        let hog = registry::by_name("stream_uncached").unwrap();
        let victim = registry::by_name("462.libquantum").unwrap();
        let solo = r.run_solo(&victim, 4, 12).cycles as f64;
        let with_hog = r.run_with_hog(&victim, &hog).fg_cycles as f64;
        assert!(with_hog / solo > 1.15, "hog slowdown only {:.3}", with_hog / solo);
    }

    #[test]
    fn hog_barely_affects_compute_bound_app() {
        let r = runner();
        let hog = registry::by_name("stream_uncached").unwrap();
        let victim = registry::by_name("453.povray").unwrap();
        let solo = r.run_solo(&victim, 4, 12).cycles as f64;
        let with_hog = r.run_with_hog(&victim, &hog).fg_cycles as f64;
        assert!(with_hog / solo < 1.08, "povray hog slowdown {:.3} too high", with_hog / solo);
    }
}
