//! Utility-based cache partitioning (UCP) — the §7 baseline.
//!
//! Qureshi & Patt's UCP (MICRO 2006) partitions the LLC to maximize *total
//! hits*: per-core utility monitors ([`waypart_sim::umon`]) supply each
//! side's hits-versus-ways curve and the **lookahead algorithm** hands out
//! ways to whoever gains the most per way. The paper contrasts its own
//! approach with this line of work: UCP needs monitoring hardware current
//! processors lack and optimizes throughput, not foreground
//! responsiveness. Implementing it lets the reproduction quantify that
//! trade-off (see `waypart-experiments::ext_ucp`): UCP should win combined
//! throughput while the paper's controller wins foreground protection.

use serde::{Deserialize, Serialize};
use waypart_sim::WayMask;

/// UCP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UcpConfig {
    /// Total LLC ways to divide.
    pub total_ways: usize,
    /// Minimum ways either side keeps (a side must always be able to
    /// allocate).
    pub min_ways: usize,
    /// Repartition once per this many sampling windows (counters decay at
    /// each repartition, per the UCP paper).
    pub windows_per_repartition: usize,
}

impl UcpConfig {
    /// Defaults for the modeled 12-way LLC.
    pub fn default_12way() -> Self {
        UcpConfig { total_ways: 12, min_ways: 1, windows_per_repartition: 4 }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on inconsistent way bounds or a zero interval.
    pub fn validate(&self) {
        assert!(self.total_ways >= 2);
        assert!(self.min_ways >= 1 && 2 * self.min_ways <= self.total_ways, "minimums exceed the cache");
        assert!(self.windows_per_repartition >= 1);
    }
}

impl Default for UcpConfig {
    fn default() -> Self {
        Self::default_12way()
    }
}

/// The lookahead partitioning algorithm for two competitors.
///
/// `fg_hits[w]` / `bg_hits[w]` give each side's hits with a `w`-way
/// allocation (`index 0 = 0 ways = 0 hits`). Both sides start at
/// `min_ways`; the remaining ways go, one *block* at a time, to the side
/// with the highest maximum marginal utility per way — Qureshi & Patt's
/// refinement over plain greedy, which gets stuck before utility "cliffs".
///
/// Returns `(fg_ways, bg_ways)`.
///
/// # Panics
/// Panics if the curves are shorter than `total_ways + 1` entries or the
/// config is invalid.
pub fn lookahead_partition(fg_hits: &[u64], bg_hits: &[u64], cfg: &UcpConfig) -> (usize, usize) {
    cfg.validate();
    assert!(fg_hits.len() > cfg.total_ways && bg_hits.len() > cfg.total_ways, "curves too short");
    let mut fg = cfg.min_ways;
    let mut bg = cfg.min_ways;
    let mut remaining = cfg.total_ways - fg - bg;

    // Max marginal utility per way over any extension of `alloc` by up to
    // `budget` ways; returns (utility_per_way, ways_to_take).
    let best_step = |hits: &[u64], alloc: usize, budget: usize| -> (f64, usize) {
        let mut best = (-1.0f64, 1usize);
        for k in 1..=budget {
            let mu = (hits[alloc + k] - hits[alloc]) as f64 / k as f64;
            if mu > best.0 {
                best = (mu, k);
            }
        }
        best
    };

    while remaining > 0 {
        let (fg_mu, fg_k) = best_step(fg_hits, fg, remaining);
        let (bg_mu, bg_k) = best_step(bg_hits, bg, remaining);
        // Ties go to whoever currently holds less, so identical curves
        // split evenly instead of one side absorbing every tie.
        let fg_wins = fg_mu > bg_mu || (fg_mu == bg_mu && fg <= bg);
        if fg_wins {
            fg += fg_k;
            remaining -= fg_k;
        } else {
            bg += bg_k;
            remaining -= bg_k;
        }
    }
    (fg, bg)
}

/// The UCP repartitioning controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UcpController {
    cfg: UcpConfig,
    windows: usize,
    fg_ways: usize,
    repartitions: u64,
}

impl UcpController {
    /// A controller starting from an even split.
    pub fn new(cfg: UcpConfig) -> Self {
        cfg.validate();
        UcpController { cfg, windows: 0, fg_ways: cfg.total_ways / 2, repartitions: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> &UcpConfig {
        &self.cfg
    }

    /// Current foreground allocation.
    pub fn fg_ways(&self) -> usize {
        self.fg_ways
    }

    /// Repartitions performed.
    pub fn repartitions(&self) -> u64 {
        self.repartitions
    }

    /// Current (foreground, background) masks.
    pub fn masks(&self) -> (WayMask, WayMask) {
        (
            WayMask::contiguous(0, self.fg_ways),
            WayMask::contiguous(self.fg_ways, self.cfg.total_ways - self.fg_ways),
        )
    }

    /// Offers one sampling window; on every `windows_per_repartition`-th
    /// call, runs lookahead over the supplied hit curves and returns the
    /// new masks (with a flag telling the caller to decay the monitors).
    pub fn on_window(&mut self, fg_hits: &[u64], bg_hits: &[u64]) -> Option<(WayMask, WayMask)> {
        self.windows += 1;
        if self.windows % self.cfg.windows_per_repartition != 0 {
            return None;
        }
        let (fg, _bg) = lookahead_partition(fg_hits, bg_hits, &self.cfg);
        self.repartitions += 1;
        if fg != self.fg_ways {
            self.fg_ways = fg;
            Some(self.masks())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Curve that saturates at `sat` ways with `h` hits per way.
    fn curve(sat: usize, h: u64, total: usize) -> Vec<u64> {
        (0..=total).map(|w| h * w.min(sat) as u64).collect()
    }

    #[test]
    fn hungrier_side_gets_more_ways() {
        let cfg = UcpConfig::default_12way();
        let fg = curve(10, 100, 12); // keeps benefiting to 10 ways
        let bg = curve(2, 100, 12); // saturates at 2
        let (f, b) = lookahead_partition(&fg, &bg, &cfg);
        assert_eq!(f + b, 12);
        assert!(f >= 9, "hungry side got only {f} ways");
    }

    #[test]
    fn equal_curves_split_roughly_evenly() {
        let cfg = UcpConfig::default_12way();
        let a = curve(12, 50, 12);
        let (f, b) = lookahead_partition(&a, &a, &cfg);
        assert_eq!(f + b, 12);
        assert!((f as i64 - b as i64).abs() <= 2, "uneven split {f}/{b}");
    }

    #[test]
    fn lookahead_sees_past_a_cliff() {
        // fg gains nothing until way 6, then a huge cliff; plain greedy
        // (k = 1) would starve it.
        let total = 12;
        let mut fg = vec![0u64; total + 1];
        for w in 6..=total {
            fg[w] = 10_000;
        }
        let bg = curve(12, 10, total);
        let (f, _) = lookahead_partition(&fg, &bg, &UcpConfig::default_12way());
        assert!(f >= 6, "lookahead missed the cliff: fg={f}");
    }

    #[test]
    fn minimums_respected() {
        let cfg = UcpConfig { total_ways: 12, min_ways: 2, windows_per_repartition: 1 };
        let fg = curve(12, 1000, 12);
        let bg = curve(12, 0, 12); // useless cache user
        let (f, b) = lookahead_partition(&fg, &bg, &cfg);
        assert_eq!(b, 2);
        assert_eq!(f, 10);
    }

    #[test]
    fn controller_repartitions_on_schedule() {
        let mut ctl = UcpController::new(UcpConfig { total_ways: 12, min_ways: 1, windows_per_repartition: 3 });
        let fg = curve(10, 100, 12);
        let bg = curve(2, 100, 12);
        assert!(ctl.on_window(&fg, &bg).is_none());
        assert!(ctl.on_window(&fg, &bg).is_none());
        let masks = ctl.on_window(&fg, &bg).expect("third window repartitions");
        assert!(masks.0.count() >= 9);
        assert!(!masks.0.overlaps(masks.1));
        assert_eq!(ctl.repartitions(), 1);
    }

    #[test]
    fn masks_partition_exactly() {
        let ctl = UcpController::new(UcpConfig::default_12way());
        let (f, b) = ctl.masks();
        assert_eq!(f.count() + b.count(), 12);
        assert!(!f.overlaps(b));
    }
}
