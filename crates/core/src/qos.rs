//! A minimum-performance QoS controller — the refs [20][26] policy family.
//!
//! The paper cites prior proposals that use partitioning "to provide a
//! minimum performance to applications" (Iyer et al.'s QoS policies,
//! Moreto et al.'s FlexDCP). This controller implements that contract on
//! the simulator's mechanism: guarantee the foreground a target fraction
//! of its uncontended IPC, and hand everything above that to the
//! background.
//!
//! Unlike Algorithm 6.2 (which infers need from MPKI deltas), the QoS
//! controller is a direct feedback loop on the *service-level objective*:
//!
//! * calibrate a reference IPC over the first windows at the maximum
//!   allocation;
//! * each window, compare the window IPC against `target × reference`:
//!   below target → grow the foreground by one step; above target plus a
//!   margin → shrink by one step.

use serde::{Deserialize, Serialize};
use waypart_sim::WayMask;

/// QoS controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosConfig {
    /// Total LLC ways.
    pub total_ways: usize,
    /// Smallest foreground allocation.
    pub min_fg_ways: usize,
    /// Largest foreground allocation (background keeps the rest).
    pub max_fg_ways: usize,
    /// Guaranteed fraction of the calibrated reference IPC (e.g. 0.95).
    pub target: f64,
    /// Hysteresis margin above the target before ways are reclaimed.
    pub margin: f64,
    /// Windows spent calibrating the reference IPC at max allocation.
    pub warmup_windows: usize,
}

impl QosConfig {
    /// A 95%-of-solo-IPC guarantee on the 12-way LLC.
    pub fn guarantee_95() -> Self {
        QosConfig {
            total_ways: 12,
            min_fg_ways: 2,
            max_fg_ways: 11,
            target: 0.95,
            margin: 0.03,
            warmup_windows: 4,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on inconsistent bounds or a target outside (0, 1].
    pub fn validate(&self) {
        assert!(self.max_fg_ways < self.total_ways, "background needs a way");
        assert!(self.min_fg_ways >= 1 && self.min_fg_ways <= self.max_fg_ways);
        assert!(self.target > 0.0 && self.target <= 1.0, "target must be a fraction");
        assert!(self.margin >= 0.0);
        assert!(self.warmup_windows >= 1);
    }
}

impl Default for QosConfig {
    fn default() -> Self {
        Self::guarantee_95()
    }
}

/// The QoS feedback controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QosController {
    cfg: QosConfig,
    fg_ways: usize,
    windows_seen: usize,
    /// Best window IPC observed during calibration.
    reference_ipc: f64,
    reallocations: u64,
}

impl QosController {
    /// A controller starting at the maximum foreground allocation (the
    /// calibration posture).
    pub fn new(cfg: QosConfig) -> Self {
        cfg.validate();
        QosController { cfg, fg_ways: cfg.max_fg_ways, windows_seen: 0, reference_ipc: 0.0, reallocations: 0 }
    }

    /// Current foreground allocation.
    pub fn fg_ways(&self) -> usize {
        self.fg_ways
    }

    /// The calibrated reference IPC (0 until warmup completes).
    pub fn reference_ipc(&self) -> f64 {
        self.reference_ipc
    }

    /// Reallocations performed.
    pub fn reallocations(&self) -> u64 {
        self.reallocations
    }

    /// Current (foreground, background) masks.
    pub fn masks(&self) -> (WayMask, WayMask) {
        (
            WayMask::contiguous(0, self.fg_ways),
            WayMask::contiguous(self.fg_ways, self.cfg.total_ways - self.fg_ways),
        )
    }

    /// Feeds one window's foreground IPC; returns new masks on change.
    pub fn observe(&mut self, window_ipc: f64) -> Option<(WayMask, WayMask)> {
        self.windows_seen += 1;
        if self.windows_seen <= self.cfg.warmup_windows {
            self.reference_ipc = self.reference_ipc.max(window_ipc);
            return None;
        }
        let floor = self.cfg.target * self.reference_ipc;
        let before = self.fg_ways;
        if window_ipc < floor {
            self.fg_ways = (self.fg_ways + 1).min(self.cfg.max_fg_ways);
        } else if window_ipc > floor * (1.0 + self.cfg.margin) {
            self.fg_ways = self.fg_ways.saturating_sub(1).max(self.cfg.min_fg_ways);
        }
        if self.fg_ways != before {
            self.reallocations += 1;
            Some(self.masks())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrates_then_reclaims_when_slo_is_met() {
        let mut q = QosController::new(QosConfig::guarantee_95());
        for _ in 0..4 {
            assert!(q.observe(1.0).is_none(), "no action during warmup");
        }
        assert!((q.reference_ipc() - 1.0).abs() < 1e-12);
        // Comfortably above the 95% floor: shrink step by step.
        for _ in 0..20 {
            q.observe(1.0);
        }
        assert_eq!(q.fg_ways(), 2);
    }

    #[test]
    fn grows_when_slo_violated() {
        let mut q = QosController::new(QosConfig::guarantee_95());
        for _ in 0..4 {
            q.observe(1.0);
        }
        for _ in 0..20 {
            q.observe(1.0); // shrink to minimum
        }
        // IPC collapses below the floor: grow back.
        let m = q.observe(0.80).expect("must react to an SLO violation");
        assert_eq!(m.0.count(), 3);
        for _ in 0..20 {
            q.observe(0.80);
        }
        assert_eq!(q.fg_ways(), 11, "persistent violation drives to max");
    }

    #[test]
    fn hysteresis_band_holds_steady() {
        let mut q = QosController::new(QosConfig::guarantee_95());
        for _ in 0..4 {
            q.observe(1.0);
        }
        // Exactly at the floor ±margin: no thrash.
        for _ in 0..10 {
            assert!(q.observe(0.96).is_none());
        }
    }

    #[test]
    fn masks_partition_the_cache() {
        let q = QosController::new(QosConfig::guarantee_95());
        let (f, b) = q.masks();
        assert_eq!(f.count() + b.count(), 12);
        assert!(!f.overlaps(b));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_target_rejected() {
        let mut cfg = QosConfig::guarantee_95();
        cfg.target = 1.5;
        cfg.validate();
    }
}
