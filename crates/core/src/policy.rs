//! Static LLC partitioning policies (§5.2).

use serde::{Deserialize, Serialize};
use waypart_sim::WayMask;

/// How the LLC is divided between the foreground and background
/// applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionPolicy {
    /// No partitioning: both applications may replace into all ways.
    Shared,
    /// Even split: each side gets half the ways.
    Fair,
    /// Uneven static split: the foreground gets `fg_ways`, the background
    /// the rest. The paper reports the *best* biased allocation (minimum
    /// foreground degradation, then maximum background performance),
    /// found by sweeping — see [`crate::static_search`].
    Biased {
        /// Ways granted to the foreground's cores.
        fg_ways: usize,
    },
}

impl PartitionPolicy {
    /// Resolves the policy into (foreground, background) way masks for a
    /// `total_ways`-way LLC.
    ///
    /// Partitions are contiguous: foreground from way 0 up, background the
    /// remainder. Under `Shared` both masks grant everything.
    ///
    /// # Panics
    /// Panics if a biased split leaves either side without a way, or
    /// `total_ways < 2` for split policies.
    pub fn masks(self, total_ways: usize) -> (WayMask, WayMask) {
        match self {
            PartitionPolicy::Shared => (WayMask::all(total_ways), WayMask::all(total_ways)),
            PartitionPolicy::Fair => {
                assert!(total_ways >= 2, "cannot split a {total_ways}-way cache");
                let half = total_ways / 2;
                (WayMask::contiguous(0, half), WayMask::contiguous(half, total_ways - half))
            }
            PartitionPolicy::Biased { fg_ways } => {
                assert!(fg_ways >= 1 && fg_ways < total_ways, "biased split {fg_ways}/{total_ways} leaves a side empty");
                (WayMask::contiguous(0, fg_ways), WayMask::contiguous(fg_ways, total_ways - fg_ways))
            }
        }
    }

    /// Short label used in experiment output.
    pub fn label(self) -> String {
        match self {
            PartitionPolicy::Shared => "shared".to_string(),
            PartitionPolicy::Fair => "fair".to_string(),
            PartitionPolicy::Biased { fg_ways } => format!("biased({fg_ways})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_grants_everything_to_both() {
        let (fg, bg) = PartitionPolicy::Shared.masks(12);
        assert_eq!(fg.count(), 12);
        assert_eq!(bg.count(), 12);
        assert!(fg.overlaps(bg));
    }

    #[test]
    fn fair_splits_evenly_and_disjointly() {
        let (fg, bg) = PartitionPolicy::Fair.masks(12);
        assert_eq!(fg.count(), 6);
        assert_eq!(bg.count(), 6);
        assert!(!fg.overlaps(bg));
        assert_eq!(fg.union(bg).count(), 12);
    }

    #[test]
    fn biased_gives_requested_ways() {
        let (fg, bg) = PartitionPolicy::Biased { fg_ways: 9 }.masks(12);
        assert_eq!(fg.count(), 9);
        assert_eq!(bg.count(), 3);
        assert!(!fg.overlaps(bg));
    }

    #[test]
    #[should_panic(expected = "leaves a side empty")]
    fn biased_cannot_starve_background() {
        let _ = PartitionPolicy::Biased { fg_ways: 12 }.masks(12);
    }

    #[test]
    fn labels() {
        assert_eq!(PartitionPolicy::Shared.label(), "shared");
        assert_eq!(PartitionPolicy::Biased { fg_ways: 3 }.label(), "biased(3)");
    }
}
