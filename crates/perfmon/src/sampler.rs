//! Fixed-interval counter sampling.

use serde::{Deserialize, Serialize};
use waypart_sim::counters::HwCounters;
use waypart_sim::Cycles;

/// One completed sampling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sample {
    /// Cycle at which the window closed.
    pub at: Cycles,
    /// Event deltas over the window.
    pub window: HwCounters,
    /// Counter state at the close (for cumulative metrics).
    pub cumulative: HwCounters,
}

impl Sample {
    /// LLC MPKI over this window.
    pub fn mpki(&self) -> f64 {
        self.window.mpki()
    }
}

/// Samples a counter file every `interval` cycles.
///
/// The paper's framework monitors at 100 ms granularity (§6.2); at the
/// modeled 3.4 GHz that is an interval of 3.4e8 cycles. Scaled experiments
/// use proportionally shorter intervals.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sampler {
    interval: Cycles,
    next_at: Cycles,
    last: HwCounters,
    samples: Vec<Sample>,
}

impl Sampler {
    /// A sampler that closes its first window at `interval`.
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn new(interval: Cycles) -> Self {
        assert!(interval > 0, "sampling interval must be positive");
        Sampler { interval, next_at: interval, last: HwCounters::default(), samples: Vec::new() }
    }

    /// The configured interval.
    pub fn interval(&self) -> Cycles {
        self.interval
    }

    /// Offers the current counter state at time `now`; closes a window (and
    /// returns it) if the interval has elapsed.
    ///
    /// Call once per simulation quantum; windows close on quantum
    /// granularity, like a timer interrupt would.
    pub fn observe(&mut self, now: Cycles, counters: HwCounters) -> Option<Sample> {
        if now < self.next_at {
            return None;
        }
        let window = counters.delta(&self.last);
        let sample = Sample { at: now, window, cumulative: counters };
        self.last = counters;
        self.next_at = now + self.interval;
        self.samples.push(sample);
        // One counter event per closed window: this single site covers
        // every runner loop, since they all sample through here.
        waypart_telemetry::emit_with(|| {
            waypart_telemetry::Event::counter(
                "perfmon.window",
                waypart_telemetry::Stamp::Cycles(now),
            )
            .field("mpki", sample.mpki())
            .field("ipc", sample.window.ipc())
            .field("instructions", sample.window.instructions)
            .field("llc_misses", sample.window.llc_misses)
        });
        Some(sample)
    }

    /// All windows closed so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The most recent window, if any.
    pub fn latest(&self) -> Option<&Sample> {
        self.samples.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctr(instr: u64, misses: u64) -> HwCounters {
        HwCounters { instructions: instr, llc_misses: misses, ..Default::default() }
    }

    #[test]
    fn windows_close_at_interval() {
        let mut s = Sampler::new(1000);
        assert!(s.observe(500, ctr(100, 1)).is_none());
        let w = s.observe(1000, ctr(300, 5)).unwrap();
        assert_eq!(w.window.instructions, 300);
        assert_eq!(w.window.llc_misses, 5);
        assert!(s.observe(1500, ctr(400, 6)).is_none());
        let w2 = s.observe(2100, ctr(700, 9)).unwrap();
        assert_eq!(w2.window.instructions, 400);
        assert_eq!(w2.window.llc_misses, 4);
        assert_eq!(s.samples().len(), 2);
    }

    #[test]
    fn window_mpki() {
        let mut s = Sampler::new(10);
        let w = s.observe(10, ctr(2000, 12)).unwrap();
        assert!((w.mpki() - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_interval_rejected() {
        let _ = Sampler::new(0);
    }

    #[test]
    fn latest_tracks_most_recent() {
        let mut s = Sampler::new(10);
        assert!(s.latest().is_none());
        s.observe(10, ctr(100, 1));
        s.observe(20, ctr(300, 2));
        assert_eq!(s.latest().unwrap().cumulative.instructions, 300);
    }
}
