//! MPKI time series (the substance of Figure 12).

use crate::sampler::Sample;
use serde::{Deserialize, Serialize};

/// A windowed MPKI trace for one application run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MpkiSeries {
    /// (retired instructions at window close, window MPKI) pairs — the
    /// axes of Figure 12.
    points: Vec<(u64, f64)>,
}

impl MpkiSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a window.
    pub fn push_sample(&mut self, s: &Sample) {
        self.points.push((s.cumulative.instructions, s.mpki()));
    }

    /// Appends a raw point.
    pub fn push(&mut self, instructions: u64, mpki: f64) {
        self.points.push((instructions, mpki));
    }

    /// The (instructions, mpki) points.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Mean window MPKI.
    pub fn mean(&self) -> f64 {
        waypart_telemetry::series::mean(self.points.iter().map(|p| p.1))
    }

    /// Counts transitions between "low" and "high" MPKI regimes relative
    /// to `threshold`, requiring `min_run` consecutive windows on a side
    /// before a crossing counts (debounce). Used to verify the model
    /// reproduces `429.mcf`'s five phase transitions (Fig 12).
    ///
    /// This type is the serde-friendly Fig 12 adapter; the algorithm
    /// lives in [`waypart_telemetry::series::regime_transitions`] so the
    /// dashboard aggregates and the figure checks can never drift apart.
    pub fn regime_transitions(&self, threshold: f64, min_run: usize) -> usize {
        waypart_telemetry::series::regime_transitions(
            self.points.iter().map(|p| p.1),
            threshold,
            min_run,
        )
    }

    /// Number of windows recorded.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

impl FromIterator<(u64, f64)> for MpkiSeries {
    fn from_iter<T: IntoIterator<Item = (u64, f64)>>(iter: T) -> Self {
        MpkiSeries { points: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_points() {
        let s: MpkiSeries = vec![(0, 2.0), (1, 4.0), (2, 6.0)].into_iter().collect();
        assert!((s.mean() - 4.0).abs() < 1e-12);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_series_mean_zero() {
        assert_eq!(MpkiSeries::new().mean(), 0.0);
        assert!(MpkiSeries::new().is_empty());
    }

    #[test]
    fn transitions_counted_with_debounce() {
        // low low low | high high high | low low low → 2 transitions.
        let pts: Vec<(u64, f64)> = [1.0, 1.0, 1.0, 9.0, 9.0, 9.0, 1.0, 1.0, 1.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u64, v))
            .collect();
        let s: MpkiSeries = pts.into_iter().collect();
        assert_eq!(s.regime_transitions(5.0, 2), 2);
    }

    #[test]
    fn debounce_suppresses_single_window_spikes() {
        let pts: Vec<(u64, f64)> = [1.0, 1.0, 9.0, 1.0, 1.0, 1.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u64, v))
            .collect();
        let s: MpkiSeries = pts.into_iter().collect();
        assert_eq!(s.regime_transitions(5.0, 2), 0);
    }

    #[test]
    fn empty_series_has_no_transitions() {
        assert_eq!(MpkiSeries::new().regime_transitions(5.0, 2), 0);
    }

    #[test]
    fn min_run_zero_counts_every_crossing() {
        // min_run 0 degenerates to 1: a sample is always a run of ≥ 1.
        let s: MpkiSeries =
            vec![(0, 1.0), (1, 9.0), (2, 1.0), (3, 9.0)].into_iter().collect();
        assert_eq!(s.regime_transitions(5.0, 0), 3);
        assert_eq!(s.regime_transitions(5.0, 1), 3);
    }

    #[test]
    fn single_sample_never_transitions() {
        let s: MpkiSeries = vec![(0, 9.0)].into_iter().collect();
        assert_eq!(s.regime_transitions(5.0, 1), 0);
        assert!((s.mean() - 9.0).abs() < 1e-12);
    }
}
