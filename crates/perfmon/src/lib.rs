//! # waypart-perfmon
//!
//! The libpfm/perf_events analog (§2.2): windowed sampling of the simulated
//! hardware counters. The paper's phase-detection framework reads LLC
//! misses per kilo-instruction over 100 ms intervals (§6.2); [`Sampler`]
//! produces exactly those windows from [`HwCounters`] snapshots, and
//! [`MpkiSeries`] holds the resulting trace (Fig 12 is one such trace).

pub mod sampler;
pub mod series;

pub use sampler::{Sample, Sampler};
pub use series::MpkiSeries;

pub use waypart_sim::counters::HwCounters;
