//! Operate the simulated machine the way an SRE drives Intel CAT through
//! Linux resctrl: write schemata lines for a latency-critical class of
//! service and a best-effort class, then watch the isolation take effect.
//!
//! ```text
//! cargo run --release --example resctrl_ops
//! ```

use waypart::core::resctl::{apply, Schemata};
use waypart::core::runner::{Runner, RunnerConfig};
use waypart::sim::Machine;
use waypart::workloads::registry;

fn main() {
    let cfg = RunnerConfig::test();
    let runner = Runner::new(cfg.clone());
    let fg = registry::by_name("471.omnetpp").expect("registered");
    let bg = registry::by_name("canneal").expect("registered");

    // The two classes of service, straight out of a resctrl runbook:
    //   /sys/fs/resctrl/latency_critical/schemata  ->  L3:0=ff0
    //   /sys/fs/resctrl/best_effort/schemata       ->  L3:0=00f
    let latency_critical: Schemata = "L3:0=ff0".parse().expect("valid schemata");
    let best_effort: Schemata = "L3:0=00f".parse().expect("valid schemata");
    println!("latency_critical: {latency_critical}");
    println!("best_effort:      {best_effort}");

    // Invalid lines are rejected with CAT's own rules:
    for bad in ["L3:0=0", "L3:0=505", "L3:0=fffff"] {
        let err = bad.parse::<Schemata>().unwrap_err();
        println!("rejected {bad:>10}: {err}");
    }

    // Drive a machine manually: service on cores 0-1, batch on cores 2-3.
    let mut machine = Machine::new(cfg.machine.clone());
    apply(&mut machine, &[0, 1], &latency_critical);
    apply(&mut machine, &[2, 3], &best_effort);
    for t in 0..4 {
        machine.attach(t, 1, Box::new(fg.thread_stream(4, t, 1, cfg.scale, 1)));
    }
    for t in 0..4 {
        machine.attach(4 + t, 2, Box::new(bg.endless_stream(4, t, 2, cfg.scale, 2)));
    }
    while !machine.app_done(1) {
        machine.run_quantum();
    }
    let partitioned = machine.finish_time(1).expect("finished");

    // Compare with no isolation at all.
    let solo = runner.run_solo(&fg, 4, 12).cycles;
    let shared = runner
        .run_pair_endless_bg(&fg, &bg, waypart::core::policy::PartitionPolicy::Shared)
        .fg_cycles;

    println!("\nservice runtime:");
    println!("  alone               : {solo} cycles");
    println!("  shared with batch   : {shared} cycles ({:+.1}%)", (shared as f64 / solo as f64 - 1.0) * 100.0);
    println!(
        "  resctrl-partitioned : {partitioned} cycles ({:+.1}%)",
        (partitioned as f64 / solo as f64 - 1.0) * 100.0
    );
}
