//! The paper's warehouse-scale motivation (§1): a latency-sensitive
//! user-facing service is co-located with batch work (indexing) to recover
//! the capacity that clusters dedicated to one application leave idle.
//!
//! We cast `471.omnetpp` (high LLC utility, latency-sensitive) as the
//! user-facing foreground and `459.GemsFDTD` (streaming batch job) as the
//! background, and compare all four policies the paper evaluates: no
//! partitioning, fair split, best static biased split, and the dynamic
//! controller.
//!
//! ```text
//! cargo run --release --example datacenter_colocation
//! ```

use waypart::core::dynamic::DynamicConfig;
use waypart::core::policy::PartitionPolicy;
use waypart::core::runner::{Runner, RunnerConfig};
use waypart::core::static_search::best_biased;
use waypart::workloads::registry;

fn main() {
    let runner = Runner::new(RunnerConfig::test());
    let fg = registry::by_name("471.omnetpp").expect("registered");
    let bg = registry::by_name("459.GemsFDTD").expect("registered");

    println!("foreground: {} (latency-sensitive service)", fg.name);
    println!("background: {} (continuously running batch job)\n", bg.name);

    // Baseline: the service alone on its 2 cores with the whole LLC.
    let solo = runner.run_solo(&fg, 4, 12);
    println!("service alone: {} cycles (the responsiveness baseline)\n", solo.cycles);

    let mut report = |label: &str, fg_cycles: u64, bg_rate: f64, detail: String| {
        let slowdown = (fg_cycles as f64 / solo.cycles as f64 - 1.0) * 100.0;
        println!(
            "{label:<22} service {slowdown:+5.1}%   batch throughput {bg_rate:.4} instr/cycle   {detail}"
        );
    };

    let shared = runner.run_pair_endless_bg(&fg, &bg, PartitionPolicy::Shared);
    report("shared (no partition)", shared.fg_cycles, shared.bg_rate, String::new());

    let fair = runner.run_pair_endless_bg(&fg, &bg, PartitionPolicy::Fair);
    report("fair (6/6 ways)", fair.fg_cycles, fair.bg_rate, String::new());

    let search = best_biased(&runner, &fg, &bg, solo.cycles);
    report(
        "best static biased",
        search.best.fg_cycles,
        search.best.bg_rate,
        format!("(service gets {} of 12 ways)", search.fg_ways),
    );

    let dynamic = runner.run_pair_dynamic(&fg, &bg, DynamicConfig::paper());
    let ways: Vec<String> = dynamic.fg_ways_trace.iter().map(|(_, w)| w.to_string()).collect();
    report(
        "dynamic (Alg 6.2)",
        dynamic.fg_cycles,
        dynamic.bg_rate,
        format!("({} reallocations)", dynamic.reallocations),
    );
    println!("\ndynamic way trace (service allocation over time): {}", ways.join(" → "));

    println!(
        "\nThe paper's claim to check: biased/dynamic protect the service far\n\
         better than naive sharing, at comparable batch throughput; the\n\
         dynamic controller needs no offline profiling sweep to get there."
    );
}
