//! The paper's mobile motivation (§1): finish background work *while* the
//! interactive foreground is active so the device can drop into a
//! low-power sleep state sooner (race-to-halt), instead of serializing the
//! two and keeping the socket awake longer.
//!
//! We cast `fop` (bursty interactive render) as the foreground and `batik`
//! (background batch rasterizer) as the work to hide behind it, and
//! compare the energy of running them sequentially vs. consolidated.
//!
//! ```text
//! cargo run --release --example mobile_race_to_halt
//! ```

use waypart::core::policy::PartitionPolicy;
use waypart::core::runner::{Runner, RunnerConfig};
use waypart::workloads::registry;

fn main() {
    let runner = Runner::new(RunnerConfig::test());
    let cfg = runner.config().machine.clone();
    let fg = registry::by_name("fop").expect("registered");
    let bg = registry::by_name("batik").expect("registered");

    println!("foreground: {} (interactive)", fg.name);
    println!("background: {} (deferred work)\n", bg.name);

    // Strategy A: run them one after another on the whole machine.
    let a = runner.run_solo(&fg, 8, 12);
    let b = runner.run_solo(&bg, 8, 12);
    let seq_cycles = a.cycles + b.cycles;
    let seq_energy = a.energy.socket_j + b.energy.socket_j;
    let seq_wall = a.energy.wall_j + b.energy.wall_j;
    println!(
        "sequential: {:.2} ms awake, {:.4} J socket, {:.4} J wall",
        cfg.cycles_to_seconds(seq_cycles) * 1e3,
        seq_energy,
        seq_wall
    );

    // Strategy B: consolidate — each app on 2 cores, LLC partitioned.
    for (label, policy) in [
        ("shared", PartitionPolicy::Shared),
        ("fair", PartitionPolicy::Fair),
        ("biased 8/4", PartitionPolicy::Biased { fg_ways: 8 }),
    ] {
        let both = runner.run_pair_both_once(&fg, &bg, policy);
        println!(
            "consolidated ({label:<10}): {:.2} ms awake, {:.4} J socket ({:+.1}%), {:.4} J wall",
            cfg.cycles_to_seconds(both.total_cycles) * 1e3,
            both.energy.socket_j,
            (both.energy.socket_j / seq_energy - 1.0) * 100.0,
            both.energy.wall_j,
        );
    }

    println!(
        "\nRace-to-halt: the consolidated runs keep more of the socket busy\n\
         for less total time — the static power that dominates mobile energy\n\
         is paid once, and the device can hibernate sooner."
    );
}
