//! Dense engine driver for profiling and A/B timing: runs the same pair
//! simulation back to back with no I/O between iterations, so nearly all
//! samples land in the hierarchy/machine hot path.
//!
//! Usage: `cargo run --release --example profile_engine [pairloop] [iters]`
//!   pairloop — repeated shared+biased pair runs (default mode)
//!   sololoop — repeated solo runs
//!   genloop  — bulk stream generation only (no hierarchy), isolating the
//!              workload-model cost from the cache-walk cost
//!
//! Prints total wall seconds and a checksum of cycles so the optimizer
//! cannot elide the work and A/B runs can be cross-checked for identical
//! semantics.

use std::time::Instant;
use waypart::core::policy::PartitionPolicy;
use waypart::core::runner::{Runner, RunnerConfig};
use waypart::sim::stream::{AccessStream, StreamEvent};
use waypart::workloads::registry;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "pairloop".to_string());
    let iters: u64 = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("iters must be an integer"))
        .unwrap_or(8);

    let runner = Runner::new(RunnerConfig::test());
    let fg = registry::by_name("canneal").expect("registered");
    let bg = registry::by_name("462.libquantum").expect("registered");

    let start = Instant::now();
    let mut checksum = 0u64;
    let mut accesses = 0u64;
    for _ in 0..iters {
        match mode.as_str() {
            "pairloop" => {
                let a = runner.run_pair_endless_bg(&fg, &bg, PartitionPolicy::Shared);
                let b = runner.run_pair_endless_bg(&fg, &bg, PartitionPolicy::Biased { fg_ways: 8 });
                checksum = checksum
                    .wrapping_add(a.fg_cycles)
                    .wrapping_add(b.fg_cycles)
                    .wrapping_add(a.bg_instructions)
                    .wrapping_add(b.fg_counters.llc_misses);
                // Foreground L1 accesses only (the background's aren't
                // reported) — an undercount, but stable across A/B runs.
                accesses += a.fg_counters.l1_accesses + b.fg_counters.l1_accesses;
            }
            "sololoop" => {
                let r = runner.run_solo(&fg, 4, 12);
                checksum = checksum.wrapping_add(r.cycles).wrapping_add(r.counters.llc_misses);
                accesses += r.counters.l1_accesses;
            }
            "genloop" => {
                // Regenerate the solo run's 4 foreground streams and drain
                // them through fill() with no hierarchy behind the buffer:
                // measures pure stream-generation cost per event.
                let cfg = RunnerConfig::test();
                let mut buf = vec![StreamEvent::Done; 256];
                for t in 0..4usize {
                    let mut s = fg.thread_stream(4, t, 1, cfg.scale, cfg.seed ^ 1);
                    loop {
                        let n = s.fill(&mut buf);
                        if n == 0 {
                            break;
                        }
                        for ev in &buf[..n] {
                            if let StreamEvent::Access { access, .. } = ev {
                                checksum = checksum.wrapping_add(access.line.0);
                                accesses += 1;
                            }
                        }
                    }
                }
            }
            "hierloop" | "hierloop_nopf" => {
                // Replay pre-generated accesses straight through the
                // hierarchy: isolates the cache-walk cost from stream
                // generation and the machine loop. `_nopf` additionally
                // disables the prefetch engines to price them separately.
                use waypart::sim::dram::DramModel;
                use waypart::sim::hierarchy::Hierarchy;
                use waypart::sim::msr::PrefetcherMask;
                use waypart::sim::ring::RingModel;
                use waypart::sim::waymask::WayMask;
                let cfg = RunnerConfig::test();
                let mut events = Vec::new();
                let mut buf = vec![StreamEvent::Done; 256];
                for t in 0..4usize {
                    let mut s = fg.thread_stream(4, t, 1, cfg.scale, cfg.seed ^ 1);
                    loop {
                        let n = s.fill(&mut buf);
                        if n == 0 {
                            break;
                        }
                        for ev in &buf[..n] {
                            if let StreamEvent::Access { access, .. } = ev {
                                events.push((t, *access));
                            }
                        }
                    }
                }
                let mcfg = cfg.machine;
                let mut hier = Hierarchy::new(&mcfg);
                let mut ring = RingModel::new(mcfg.ring);
                let mut dram = DramModel::new(mcfg.dram);
                let pf = if mode == "hierloop" {
                    PrefetcherMask::all_enabled()
                } else {
                    PrefetcherMask::all_disabled()
                };
                let mask = WayMask::all(mcfg.llc.ways);
                for (core, a) in &events {
                    let o = hier.access(*core, a, mask, pf, &mut ring, &mut dram);
                    checksum = checksum.wrapping_add(o.latency);
                    accesses += 1;
                }
                ring.end_quantum(20_000);
                dram.end_quantum(20_000);
            }
            other => panic!("unknown mode `{other}` (pairloop|sololoop|genloop|hierloop|hierloop_nopf)"),
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let ns_per_access = if accesses > 0 { secs * 1e9 / accesses as f64 } else { 0.0 };
    println!(
        "mode={mode} iters={iters} secs={secs:.3} accesses={accesses} ns_per_access={ns_per_access:.2} checksum={checksum}"
    );
}
