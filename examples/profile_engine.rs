//! Dense engine driver for profiling and A/B timing: runs the same pair
//! simulation back to back with no I/O between iterations, so nearly all
//! samples land in the hierarchy/machine hot path.
//!
//! Usage: `cargo run --release --example profile_engine [pairloop] [iters]`
//!   pairloop — repeated shared+biased pair runs (default mode)
//!   sololoop — repeated solo runs
//!
//! Prints total wall seconds and a checksum of cycles so the optimizer
//! cannot elide the work and A/B runs can be cross-checked for identical
//! semantics.

use std::time::Instant;
use waypart::core::policy::PartitionPolicy;
use waypart::core::runner::{Runner, RunnerConfig};
use waypart::workloads::registry;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "pairloop".to_string());
    let iters: u64 = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("iters must be an integer"))
        .unwrap_or(8);

    let runner = Runner::new(RunnerConfig::test());
    let fg = registry::by_name("canneal").expect("registered");
    let bg = registry::by_name("462.libquantum").expect("registered");

    let start = Instant::now();
    let mut checksum = 0u64;
    let mut accesses = 0u64;
    for _ in 0..iters {
        match mode.as_str() {
            "pairloop" => {
                let a = runner.run_pair_endless_bg(&fg, &bg, PartitionPolicy::Shared);
                let b = runner.run_pair_endless_bg(&fg, &bg, PartitionPolicy::Biased { fg_ways: 8 });
                checksum = checksum
                    .wrapping_add(a.fg_cycles)
                    .wrapping_add(b.fg_cycles)
                    .wrapping_add(a.bg_instructions)
                    .wrapping_add(b.fg_counters.llc_misses);
                // Foreground L1 accesses only (the background's aren't
                // reported) — an undercount, but stable across A/B runs.
                accesses += a.fg_counters.l1_accesses + b.fg_counters.l1_accesses;
            }
            "sololoop" => {
                let r = runner.run_solo(&fg, 4, 12);
                checksum = checksum.wrapping_add(r.cycles).wrapping_add(r.counters.llc_misses);
                accesses += r.counters.l1_accesses;
            }
            other => panic!("unknown mode `{other}` (pairloop|sololoop)"),
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let ns_per_access = if accesses > 0 { secs * 1e9 / accesses as f64 } else { 0.0 };
    println!(
        "mode={mode} iters={iters} secs={secs:.3} accesses={accesses} ns_per_access={ns_per_access:.2} checksum={checksum}"
    );
}
