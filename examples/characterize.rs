//! Characterize one application the way the paper's §3 does: thread
//! scalability, LLC-capacity sensitivity, prefetcher sensitivity, and
//! bandwidth sensitivity — the four axes behind the Figure 5 clustering.
//!
//! ```text
//! cargo run --release --example characterize -- 429.mcf
//! ```

use waypart::core::runner::{Runner, RunnerConfig};
use waypart::sim::msr::PrefetcherMask;
use waypart::workloads::registry;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "x264".to_string());
    let app = registry::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown application {name}; pick one of:");
        for a in registry::all() {
            eprintln!("  {}", a.name);
        }
        std::process::exit(1);
    });
    let runner = Runner::new(RunnerConfig::test());

    println!("== {} ({:?}) ==", app.name, app.suite);
    println!(
        "paper classes: scalability {:?}, LLC utility {:?}{}\n",
        app.scal_class,
        app.llc_class,
        if app.high_apki { ", >10 LLC accesses/KI" } else { "" }
    );

    println!("thread scalability (speedup vs 1 thread, hyperthread pairs first):");
    let t1 = runner.run_solo(&app, 1, 12).cycles;
    for threads in 1..=8 {
        let t = runner.run_solo(&app, threads, 12).cycles;
        let speedup = t1 as f64 / t as f64;
        println!("  {threads} threads: {speedup:5.2}x {}", "*".repeat((speedup * 8.0) as usize));
    }

    println!("\nLLC capacity (4 threads, execution time normalized to 12 ways):");
    let full = runner.run_solo(&app, 4, 12).cycles as f64;
    for ways in 1..=12 {
        let r = runner.run_solo(&app, 4, ways);
        println!(
            "  {ways:>2} ways: {:5.2}x time, {:6.1} MPKI",
            r.cycles as f64 / full,
            r.counters.mpki()
        );
    }

    let on = runner.run_solo_configured(&app, 4, 12, PrefetcherMask::all_enabled()).cycles as f64;
    let off = runner.run_solo_configured(&app, 4, 12, PrefetcherMask::all_disabled()).cycles as f64;
    println!("\nprefetcher sensitivity: time(on)/time(off) = {:.3}", on / off);

    let hog = registry::by_name("stream_uncached").expect("registered");
    let with_hog = runner.run_with_hog(&app, &hog).fg_cycles as f64;
    println!("bandwidth sensitivity: slowdown next to stream_uncached = {:.3}x", with_hog / full);
}
