//! Scratch harness: prints sampled-vs-exact error for a grid of
//! detail:skip schedules on the headline pair, plus wall time, so the
//! default schedule can be chosen from data rather than guessed.

use std::time::Instant;
use waypart::core::policy::PartitionPolicy;
use waypart::core::runner::{FidelityMode, Runner, RunnerConfig};
use waypart::workloads::registry;

fn main() {
    if std::env::args().any(|a| a == "--fig12") {
        fig12_mode();
        return;
    }
    if std::env::args().any(|a| a == "--bench") {
        bench_mode();
        return;
    }
    let fg = registry::by_name("canneal").expect("registered");
    let bg = registry::by_name("462.libquantum").expect("registered");

    let run = |fid: FidelityMode| {
        let mut cfg = RunnerConfig::test();
        cfg.fidelity = fid;
        let runner = Runner::new(cfg);
        let t = Instant::now();
        let r = runner.run_pair_endless_bg(&fg, &bg, PartitionPolicy::Biased { fg_ways: 8 });
        (r, t.elapsed().as_secs_f64())
    };

    let (exact, exact_s) = run(FidelityMode::Exact);
    if std::env::args().any(|a| a == "--trace") {
        for (i, (instr, mpki)) in exact.fg_mpki.points().iter().enumerate() {
            println!("w{i:02} instr={instr} mpki={mpki:.4}");
        }
    }
    println!(
        "exact: mpki={:.4} ipc={:.4} fg_cycles={} llcm={} secs={:.3}",
        exact.fg_counters.mpki(),
        exact.fg_counters.ipc(),
        exact.fg_cycles,
        exact.fg_counters.llc_misses,
        exact_s
    );

    for (d, s) in [(1u32, 1u32), (1, 3), (1, 7), (1, 15), (1, 31), (2, 6), (2, 14), (2, 30), (3, 21), (4, 60)] {
        let (r, secs) = run(FidelityMode::Sampled { detail_quanta: d, skip_quanta: s });
        let mpki = r.fg_counters.mpki();
        let ipc = r.fg_counters.ipc();
        let mpki_err = (mpki - exact.fg_counters.mpki()).abs() / exact.fg_counters.mpki();
        let ipc_err = (ipc - exact.fg_counters.ipc()).abs() / exact.fg_counters.ipc();
        println!(
            "{d:>2}:{s:<2} mpki={mpki:.4} ({:+6.1}%) ipc={ipc:.4} ({:+5.1}%) fg_cycles={} llcm={} secs={secs:.3}",
            mpki_err * 100.0,
            ipc_err * 100.0,
            r.fg_cycles,
            r.fg_counters.llc_misses,
        );
    }
}

/// Bench-scale probe: same run shape as `--fig12` but at `bench` scale
/// (64× the instruction volume of `test`), where the warm-up prefix and
/// phase transients amortize — the regime `reproduce` cold runs live in.
fn bench_mode() {
    let app = registry::by_name("429.mcf").expect("registered");
    let run = |fid: FidelityMode| {
        let mut cfg = RunnerConfig::bench();
        cfg.fidelity = fid;
        let runner = Runner::new(cfg);
        let t = Instant::now();
        let r = runner.run_solo(&app, 1, 12);
        (r, t.elapsed().as_secs_f64())
    };
    let (exact, exact_s) = run(FidelityMode::Exact);
    let em = exact.mpki.mean();
    println!(
        "exact: mean_mpki={em:.4} cum_mpki={:.4} windows={} cycles={} llcm={} secs={exact_s:.3}",
        exact.counters.mpki(),
        exact.mpki.len(),
        exact.cycles,
        exact.counters.llc_misses,
    );
    for (d, s) in [(1u32, 7u32), (1, 15), (1, 31), (1, 63), (2, 126)] {
        let (r, secs) = run(FidelityMode::Sampled { detail_quanta: d, skip_quanta: s });
        let m = r.mpki.mean();
        println!(
            "{d:>2}:{s:<3} mean_mpki={m:.4} ({:+5.1}%) cum_mpki={cum:.4} ({:+5.1}%) secs={secs:.3} speedup={:.1}x",
            (m - em).abs() / em * 100.0,
            (r.counters.mpki() - exact.counters.mpki()).abs() / exact.counters.mpki() * 100.0,
            exact_s / secs,
            cum = r.counters.mpki(),
        );
    }
}

/// Fig12-style probe: single-thread `429.mcf` solo at 12 ways — the
/// sweep's dominant run shape — comparing series-mean MPKI and wall time.
fn fig12_mode() {
    let app = registry::by_name("429.mcf").expect("registered");
    let run = |fid: FidelityMode| {
        let mut cfg = RunnerConfig::test();
        cfg.fidelity = fid;
        let runner = Runner::new(cfg);
        let t = Instant::now();
        let r = runner.run_solo(&app, 1, 12);
        (r, t.elapsed().as_secs_f64())
    };
    let (exact, exact_s) = run(FidelityMode::Exact);
    let em = exact.mpki.mean();
    println!(
        "exact: mean_mpki={em:.4} cum_mpki={:.4} windows={} cycles={} llcm={} secs={exact_s:.3}",
        exact.counters.mpki(),
        exact.mpki.len(),
        exact.cycles,
        exact.counters.llc_misses,
    );
    for (d, s) in [(1u32, 7u32), (1, 15), (1, 31), (1, 63), (2, 30), (2, 62), (3, 21), (4, 60)] {
        let (r, secs) = run(FidelityMode::Sampled { detail_quanta: d, skip_quanta: s });
        let m = r.mpki.mean();
        let cum = r.counters.mpki();
        println!(
            "{d:>2}:{s:<3} mean_mpki={m:.4} ({:+5.1}%) cum_mpki={cum:.4} ({:+5.1}%) cycles={} llcm={} secs={secs:.3} speedup={:.1}x",
            (m - em).abs() / em * 100.0,
            (cum - exact.counters.mpki()).abs() / exact.counters.mpki() * 100.0,
            r.cycles,
            r.counters.llc_misses,
            exact_s / secs,
        );
    }
}
