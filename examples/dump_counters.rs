//! Dumps a diffable counter fingerprint for every registered application
//! under three configurations (solo/12-way, solo/4-way, shared pair vs a
//! fixed background). Redirect to a file before and after an engine
//! change and `diff` the two dumps: any line that moves means simulator
//! semantics changed, not just speed.
//!
//! Usage: `cargo run --release --example dump_counters [max_quanta]`
//! (default 40_000 quanta — a few seconds for the full registry).

use waypart::core::policy::PartitionPolicy;
use waypart::core::runner::{Runner, RunnerConfig};
use waypart::sim::counters::HwCounters;
use waypart::workloads::registry;

fn fp(c: &HwCounters) -> String {
    format!(
        "i={} c={} l1a={} l1m={} l2m={} llcm={} wb={} pf={} pfh={} nt={}",
        c.instructions,
        c.cycles,
        c.l1_accesses,
        c.l1_misses,
        c.l2_misses,
        c.llc_misses,
        c.dram_writebacks,
        c.prefetches_issued,
        c.prefetch_hits,
        c.non_temporal,
    )
}

fn main() {
    let max_quanta: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("max_quanta must be an integer"))
        .unwrap_or(40_000);
    let mut cfg = RunnerConfig::test();
    cfg.max_quanta = max_quanta;
    let runner = Runner::new(cfg);

    let bg = registry::by_name("462.libquantum").expect("registered");
    for app in registry::all() {
        let solo = runner.run_solo(&app, 4, 12);
        println!("{} solo12 cycles={} {}", app.name, solo.cycles, fp(&solo.counters));
        let narrow = runner.run_solo(&app, 4, 4);
        println!("{} solo4  cycles={} {}", app.name, narrow.cycles, fp(&narrow.counters));
        let pair = runner.run_pair_endless_bg(&app, &bg, PartitionPolicy::Shared);
        println!(
            "{} shared fg_cycles={} bg_i={} {}",
            app.name,
            pair.fg_cycles,
            pair.bg_instructions,
            fp(&pair.fg_counters)
        );
    }
}
