//! Quickstart: run one application on the simulated machine and read its
//! counters and energy — the "hello world" of the library.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use waypart::core::runner::{Runner, RunnerConfig};
use waypart::workloads::registry;

fn main() {
    // A 1/64-capacity machine with proportionally scaled workloads: the
    // paper's 6 MB LLC becomes 96 KB, runs take milliseconds, and every
    // capacity *ratio* (the thing all results depend on) is preserved.
    let runner = Runner::new(RunnerConfig::test());

    let app = registry::by_name("429.mcf").expect("mcf is registered");
    println!("running {} (SPEC CPU2006) alone, 1 thread, full LLC...", app.name);

    let result = runner.run_solo(&app, 1, 12);
    let cfg = runner.config();
    let seconds = cfg.machine.cycles_to_seconds(result.cycles);

    println!("  cycles          : {}", result.cycles);
    println!("  simulated time  : {:.3} ms", seconds * 1e3);
    println!("  instructions    : {}", result.counters.instructions);
    println!("  IPC             : {:.3}", result.counters.ipc());
    println!("  LLC accesses/KI : {:.1}", result.counters.apki());
    println!("  LLC misses/KI   : {:.1}", result.counters.mpki());
    println!("  socket energy   : {:.4} J", result.energy.socket_j);
    println!("  wall energy     : {:.4} J", result.energy.wall_j);

    // mcf's famous phase behavior (Figure 12): watch windowed MPKI move.
    println!("\nwindowed MPKI trace ({} windows):", result.mpki.len());
    for (i, (instr, mpki)) in result.mpki.points().iter().enumerate().step_by(4) {
        let bar = "#".repeat((mpki / 2.0).min(40.0) as usize);
        println!("  w{i:>3} @ {instr:>9} instr | {mpki:6.1} {bar}");
    }

    // Now give it less cache and watch the misses climb.
    println!("\ncapacity sensitivity (1 thread):");
    for ways in [2, 4, 6, 8, 10, 12] {
        let r = runner.run_solo(&app, 1, ways);
        println!(
            "  {ways:>2} ways ({:>4} KB): {:>10} cycles, {:5.1} MPKI",
            cfg.machine.llc_bytes_for_ways(ways) / 1024,
            r.cycles,
            r.counters.mpki()
        );
    }
}
