//! Derive macros for the vendored serde stub.
//!
//! Hand-parses the item's token stream (no `syn`/`quote`, which are not
//! vendored) and emits impls of the stub's `Serialize`/`Deserialize`
//! traits. Supported shapes — the only ones this workspace derives on:
//!
//! * structs with named fields → JSON object, declaration order
//! * newtype structs → transparent (the inner value's encoding)
//! * other tuple structs → JSON array
//! * unit structs → `null`
//! * enums → externally tagged like real serde: unit variants as the
//!   variant-name string, data variants as `{"Variant": payload}` where a
//!   one-field tuple payload is transparent, multi-field is an array, and
//!   named fields are an object
//!
//! Generics and `#[serde(...)]` attributes are rejected with a
//! compile-time panic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Input {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_serialize(&item).parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_deserialize(&item).parse().unwrap()
}

// ------------------------------------------------------------------ parsing

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);

    let kind = expect_ident(&mut iter, "expected `struct` or `enum`");
    let name = expect_ident(&mut iter, "expected item name");
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types ({name})");
    }

    let shape = match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            _ => panic!("malformed struct body for {name}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(&name, g.stream()))
            }
            _ => panic!("malformed enum body for {name}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    };

    Input { name, shape }
}

fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                // pub(crate) / pub(super): swallow the restriction group.
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    iter.next();
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(
    iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    what: &str,
) -> String {
    match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("{what}, found {other:?}"),
    }
}

/// Field names of a `{ ... }` struct body, in declaration order.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return fields,
            other => panic!("expected field name, found {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        // Consume the type: everything up to the next comma outside angle
        // brackets. Parens/brackets arrive as opaque groups, so only `<>`
        // depth needs tracking.
        let mut angle_depth = 0usize;
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => return fields,
            }
        }
    }
}

/// Number of fields in a `( ... )` tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0usize;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    count + usize::from(saw_tokens)
}

/// The variants of an enum body, with their payload shapes.
fn parse_variants(enum_name: &str, body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return variants,
            other => panic!("expected variant name in {enum_name}, found {other:?}"),
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantShape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                iter.next();
                VariantShape::Tuple(arity)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip an explicit discriminant (`= expr`), then expect `,` or end.
        match iter.next() {
            None => return variants,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => loop {
                match iter.next() {
                    None => return variants,
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                    Some(_) => {}
                }
            },
            other => panic!("unexpected token after a variant of {enum_name}: {other:?}"),
        }
    }
}

// ------------------------------------------------------------------ codegen

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),")
                })
                .collect();
            format!("::serde::json::Value::Obj(vec![{entries}])")
        }
        // Newtype structs encode transparently as their inner value.
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let entries: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::json::Value::Arr(vec![{entries}])")
        }
        Shape::Unit => "::serde::json::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants.iter().map(|v| serialize_variant_arm(name, v)).collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::json::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_variant_arm(name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.shape {
        VariantShape::Unit => {
            format!("{name}::{vn} => ::serde::json::Value::Str(\"{vn}\".to_string()),")
        }
        VariantShape::Named(fields) => {
            let binds = fields.join(", ");
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"))
                .collect();
            format!(
                "{name}::{vn} {{ {binds} }} => ::serde::json::Value::Obj(vec![\
                     (\"{vn}\".to_string(), ::serde::json::Value::Obj(vec![{entries}]))]),"
            )
        }
        VariantShape::Tuple(1) => format!(
            "{name}::{vn}(f0) => ::serde::json::Value::Obj(vec![\
                 (\"{vn}\".to_string(), ::serde::Serialize::to_value(f0))]),"
        ),
        VariantShape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let entries: String = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                .collect();
            format!(
                "{name}::{vn}({}) => ::serde::json::Value::Obj(vec![\
                     (\"{vn}\".to_string(), ::serde::json::Value::Arr(vec![{entries}]))]),",
                binds.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?,")
                })
                .collect();
            format!("::std::result::Result::Ok({name} {{ {entries} }})")
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let entries: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?,"))
                .collect();
            format!(
                "let arr = v.as_arr()?;\n\
                 if arr.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::json::Error::msg(\
                         format!(\"expected {n} fields for {name}, got {{}}\", arr.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({entries}))"
            )
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::json::Value) \
                 -> ::std::result::Result<Self, ::serde::json::Error> {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| {
            let vn = &v.name;
            format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
        })
        .collect();
    let data_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.shape {
                VariantShape::Unit => None,
                VariantShape::Named(fields) => {
                    let entries: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(inner.field(\"{f}\")?)?,"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {entries} }}),"
                    ))
                }
                VariantShape::Tuple(1) => Some(format!(
                    "\"{vn}\" => ::std::result::Result::Ok(\
                         {name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                )),
                VariantShape::Tuple(n) => {
                    let entries: String = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?,"))
                        .collect();
                    Some(format!(
                        "\"{vn}\" => {{\n\
                             let arr = inner.as_arr()?;\n\
                             if arr.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::json::Error::msg(\
                                     format!(\"expected {n} fields for {name}::{vn}, got {{}}\", \
                                             arr.len())));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{vn}({entries}))\n\
                         }},"
                    ))
                }
            }
        })
        .collect();

    let err = format!(
        "::std::result::Result::Err(::serde::json::Error::msg(\
             format!(\"unexpected {name} variant encoding: {{}}\", v.kind())))"
    );
    let obj_arm = if data_arms.is_empty() {
        String::new()
    } else {
        format!(
            "::serde::json::Value::Obj(fields) if fields.len() == 1 => {{\n\
                 let (tag, inner) = &fields[0];\n\
                 match tag.as_str() {{\n\
                     {data_arms}\n\
                     other => ::std::result::Result::Err(::serde::json::Error::msg(\
                         format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }}\n\
             }}\n"
        )
    };
    format!(
        "match v {{\n\
             ::serde::json::Value::Str(tag) => match tag.as_str() {{\n\
                 {unit_arms}\n\
                 other => ::std::result::Result::Err(::serde::json::Error::msg(\
                     format!(\"unknown {name} variant `{{other}}`\"))),\n\
             }},\n\
             {obj_arm}\
             _ => {err},\n\
         }}"
    )
}
