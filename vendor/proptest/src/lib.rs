//! Offline stand-in for `proptest` (vendored stub).
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), [`strategy::Strategy`] with `prop_map`, range and tuple
//! strategies, [`arbitrary::any`], [`collection::vec`], and the
//! `prop_assert!` family.
//!
//! Differences from real proptest: case generation is seeded from the
//! test function's name (fully deterministic, no persistence files), and
//! failing cases are *not* shrunk — the assert fires with the raw inputs.

/// Everything a test module needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub mod test_runner {
    /// Per-test configuration; only `cases` is meaningful in this stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic case-generation RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG seeded from `label` (the test name), so every run of a
        /// given test explores the same cases.
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy applying `f` to every generated value.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value spanning the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy form of [`Arbitrary`]; see [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Vec`s whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports an optional `#![proptest_config(expr)]` header and any number
/// of `fn name(pat in strategy, ...) { body }` items, matching the real
/// macro's surface for the patterns this workspace uses.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for _case in 0..cfg.cases {
                let ($($pat,)*) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut rng),)*
                );
                $body
            }
        }
    )*};
}

/// `assert!` under proptest's spelling (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_maps_compose(
            x in 1u64..100,
            flag in any::<bool>(),
            v in crate::collection::vec((0usize..4, 0.0f64..1.0).prop_map(|(a, b)| (a, b)), 1..20),
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert!((0.0..1.0).contains(&b));
            }
            let _ = flag;
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
