//! Offline stand-in for `serde` (vendored stub).
//!
//! Exposes the names this workspace uses — the [`Serialize`] and
//! [`Deserialize`] traits plus the same-named derive macros re-exported
//! from `serde_derive` — over a deliberately simple value model: every
//! serializable type converts to and from [`json::Value`], and the
//! [`json`] module renders that to standard JSON text.
//!
//! The trait surface is intentionally *not* the visitor-based API of real
//! serde; nothing in this workspace relies on it. What is preserved:
//!
//! * `use serde::{Serialize, Deserialize};` + `#[derive(Serialize, Deserialize)]`
//! * round-tripping: `json::from_str::<T>(&json::to_string(&v))` reproduces
//!   `v` exactly (f64 values are rendered with shortest-roundtrip
//!   formatting, so bit-exactness is preserved for finite floats).

pub mod json;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use json::{Error, Value};

/// Conversion into the JSON value model.
pub trait Serialize {
    /// This value as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the JSON value model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64()?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    "{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64()?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    "{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

// ---------------------------------------------------------------- strings

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

/// `&'static str` deserialization leaks the parsed string. The workspace
/// only deserializes `&'static str` for small, long-lived registry-style
/// configuration (e.g. application names), where the leak is a deliberate
/// interning.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::leak(v.as_str()?.to_owned().into_boxed_str()))
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

/// Map keys encodable as JSON object keys.
pub trait MapKey: Sized {
    /// This key as an object-key string.
    fn to_key_string(&self) -> String;
    /// Parses a key back from its object-key string.
    fn from_key_string(s: &str) -> Result<Self, Error>;
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key_string(&self) -> String { self.to_string() }
            fn from_key_string(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::msg(format!(
                    "bad {} map key `{s}`", stringify!($t))))
            }
        }
    )*};
}
impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl MapKey for String {
    fn to_key_string(&self) -> String {
        self.clone()
    }
    fn from_key_string(s: &str) -> Result<Self, Error> {
        Ok(s.to_owned())
    }
}

/// Maps serialize as JSON objects with entries sorted by key, so the
/// rendered text is deterministic regardless of hash iteration order.
impl<K: MapKey + Ord, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key_string(), v.to_value()))
                .collect(),
        )
    }
}
impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, item)| Ok((K::from_key_string(k)?, V::from_value(item)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.to_key_string(), v.to_value())).collect())
    }
}
impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, item)| Ok((K::from_key_string(k)?, V::from_value(item)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_arr()?;
                let expect = [$(stringify!($idx)),+].len();
                if arr.len() != expect {
                    return Err(Error::msg(format!(
                        "expected {expect}-tuple, got array of {}", arr.len())));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_arr()?;
        if arr.len() != N {
            return Err(Error::msg(format!("expected [T; {N}], got array of {}", arr.len())));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(arr) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
