//! The value model and JSON text codec behind the stub serde traits.
//!
//! Serialization is deterministic: object keys keep insertion (i.e. struct
//! declaration) order and floats are rendered with Rust's shortest
//! round-trip formatting, so serializing the same value twice yields
//! byte-identical text and a parse → serialize round trip is the identity
//! on codec output. Non-finite floats serialize as `null` and parse back
//! as NaN.

use std::fmt;

/// A parse or conversion error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying `msg`.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (parse only produces this for values < 0).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// A short name of this value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// This value as a u64.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match self {
            Value::U64(n) => Ok(*n),
            Value::I64(n) if *n >= 0 => Ok(*n as u64),
            other => Err(Error::msg(format!("expected unsigned integer, got {}", other.kind()))),
        }
    }

    /// This value as an i64.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match self {
            Value::I64(n) => Ok(*n),
            Value::U64(n) => {
                i64::try_from(*n).map_err(|_| Error::msg(format!("{n} overflows i64")))
            }
            other => Err(Error::msg(format!("expected integer, got {}", other.kind()))),
        }
    }

    /// This value as an f64 (integers widen; `null` reads as NaN).
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!("expected number, got {}", other.kind()))),
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }

    /// This value as an array.
    pub fn as_arr(&self) -> Result<&[Value], Error> {
        match self {
            Value::Arr(items) => Ok(items),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }

    /// The field `name` of an object value.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!("expected object, got {}", other.kind()))),
        }
    }

    /// The enum variant name, for unit-variant enums encoded as strings.
    pub fn as_variant(&self) -> Result<&str, Error> {
        self.as_str()
    }
}

impl crate::Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl crate::Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Serializes `value` to a JSON string.
pub fn to_string<T: crate::Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    out
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: crate::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value)
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos,
                self.peek().map(|c| c as char).unwrap_or('∅')
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected `{}` at byte {}",
                other.map(|c| c as char).unwrap_or('∅'),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::msg("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\\n\"", "[1,2]", "{\"a\":1}"] {
            let v = parse(text).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out);
            assert_eq!(out, text);
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1, 1.0 / 3.0, 6.02e23, -0.0, 1e-308] {
            let v = parse(&{
                let mut s = String::new();
                write_value(&Value::F64(x), &mut s);
                s
            })
            .unwrap();
            assert_eq!(v.as_f64().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn errors_carry_context() {
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
    }
}
