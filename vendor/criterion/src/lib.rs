//! Offline stand-in for `criterion` (vendored stub).
//!
//! Mirrors the harness surface this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::throughput`] /
//! `sample_size` / `bench_function` / `finish`, [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! calibrate-then-sample timer instead of criterion's full statistics.
//!
//! Results print one line per benchmark to stdout. Two environment
//! variables adjust behavior:
//!
//! * `WAYPART_BENCH_JSON=<path>` — append one JSON object per benchmark
//!   (`{"bench": ..., "ns_per_iter": ..., "iters": ..., "elems_per_iter": ...}`).
//! * `WAYPART_BENCH_BUDGET_MS=<n>` — wall-clock budget per benchmark
//!   (default 300 ms), split across samples.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units-of-work annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level harness handle passed to benchmark functions.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let budget_ms = std::env::var("WAYPART_BENCH_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300u64);
        Criterion { budget: Duration::from_millis(budget_ms) }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            budget: self.budget,
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Standalone benchmark outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(id, self.budget, None, f);
        self
    }
}

/// A named group of benchmarks sharing throughput/budget settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Annotates per-iteration throughput for ns/element reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stub sizes samples from the
    /// time budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark under this group's settings.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.budget, self.throughput, f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Timer handle given to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, run back-to-back for the harness-chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(
    label: &str,
    budget: Duration,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibrate: grow the iteration count until one sample is long enough
    // to time reliably (>= 1/16 of the budget, so ~8 samples fit).
    let sample_target = budget / 16;
    let mut iters = 1u64;
    let mut calib = Duration::ZERO;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        calib = b.elapsed;
        if calib >= sample_target || iters >= 1 << 30 {
            break;
        }
        // Aim straight for the target with ~2x headroom.
        let per_iter = calib.as_nanos().max(1) / u128::from(iters);
        let want = (sample_target.as_nanos() * 2 / per_iter).max(u128::from(iters) * 2);
        iters = want.min(1 << 30) as u64;
    }

    // Sample until the budget is spent; report the median.
    let mut samples_ns: Vec<f64> = vec![calib.as_nanos() as f64 / iters as f64];
    let started = Instant::now();
    while started.elapsed() < budget && samples_ns.len() < 64 {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let ns_per_iter = samples_ns[samples_ns.len() / 2];

    let elems = match throughput {
        Some(Throughput::Elements(n)) => Some(n),
        _ => None,
    };
    match elems {
        Some(n) if n > 0 => println!(
            "bench {label}: {ns_per_iter:.1} ns/iter ({:.2} ns/elem, {} samples x {iters} iters)",
            ns_per_iter / n as f64,
            samples_ns.len(),
        ),
        _ => println!(
            "bench {label}: {ns_per_iter:.1} ns/iter ({} samples x {iters} iters)",
            samples_ns.len(),
        ),
    }

    if let Ok(path) = std::env::var("WAYPART_BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            let elems_field = elems
                .map(|n| n.to_string())
                .unwrap_or_else(|| "null".to_string());
            let _ = writeln!(
                file,
                "{{\"bench\":\"{label}\",\"ns_per_iter\":{ns_per_iter:.3},\"iters\":{iters},\"elems_per_iter\":{elems_field}}}"
            );
        }
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
