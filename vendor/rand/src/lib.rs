//! Offline stand-in for the `rand` crate (vendored stub).
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`rngs::SmallRng`] (xoshiro256++, the same generator family real rand
//! 0.8 uses on 64-bit targets), [`SeedableRng::seed_from_u64`] (SplitMix64
//! expansion), and the [`Rng`] extension trait with `gen`, `gen_bool` and
//! `gen_range` (widening-multiply ranged sampling).
//!
//! The draw stream is **not** bit-compatible with crates.io rand: uniform
//! sampling here uses a single widening multiply rather than rand's
//! rejection loop, so statistical results differ from runs made with the
//! real crate at the per-mille level. All consumers in this workspace only
//! require determinism, which this stub provides.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically expands a 64-bit seed into generator state.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from uniform random bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value inside the range from `rng`.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Lemire-style widening multiply: maps 64 random bits onto
                // [0, span) with negligible bias for simulation purposes.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                let draw = ((u128::from(rng.next_u64()) * u128::from(span + 1)) >> 64) as u64;
                lo + draw as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (self.start as $u).wrapping_add(hi as $u) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator — xoshiro256++, the same
    /// family rand 0.8's `SmallRng` uses on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion, as real rand does for seed_from_u64.
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = r.gen_range(10..20u64);
            assert!((10..20).contains(&x));
            let y: u32 = r.gen_range(0..=5u32);
            assert!(y <= 5);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let g = r.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&g));
        }
    }

    #[test]
    fn full_u64_range_does_not_panic() {
        let mut r = SmallRng::seed_from_u64(7);
        let _ = r.gen_range(0..=u64::MAX);
    }
}
