//! # waypart
//!
//! A from-scratch reproduction of **Cook, Moreto, Bird, Dao, Patterson,
//! Asanović — "A Hardware Evaluation of Cache Partitioning to Improve
//! Utilization and Energy-Efficiency while Preserving Responsiveness"
//! (ISCA 2013)** as a Rust library.
//!
//! The paper measures, on a prototype Sandy Bridge x86 with way-based LLC
//! partitioning, whether a latency-sensitive *foreground* application and a
//! throughput *background* application can share a socket without hurting
//! responsiveness — and shows that a lightweight dynamic partitioning
//! controller keeps the foreground within 1–2% of its best static
//! allocation while raising background throughput 19% on average.
//!
//! This crate is a facade re-exporting the whole system:
//!
//! * [`sim`] — the machine: 4 cores × 2 hyperthreads, private L1/L2, a
//!   6 MB 12-way *inclusive* LLC with per-core way-allocation masks
//!   (replacement-only, no flush on reallocation), 4 hardware prefetchers,
//!   ring + DRAM bandwidth models, and hardware performance counters;
//! * [`workloads`] — statistical models of the paper's 45 applications
//!   (PARSEC, DaCapo, SPEC CPU2006, parallel apps, microbenchmarks),
//!   calibrated against the paper's Tables 1–2 and Figures 1–4;
//! * [`perfmon`] — the libpfm analog: windowed counter sampling and MPKI
//!   traces;
//! * [`energy`] — the RAPL / wall-meter analog;
//! * [`core`] — the paper's contribution: static partitioning policies,
//!   phase detection (Alg 6.1), the dynamic partitioner (Alg 6.2), the
//!   biased-partition oracle sweep, and the measurement runner;
//! * [`analysis`] — single-linkage clustering, feature vectors, and
//!   consolidation metrics;
//! * [`experiments`] — one regenerator per table/figure of the paper;
//! * [`telemetry`] — structured tracing and metrics over the whole
//!   pipeline (span/event API, JSONL + Chrome `trace_event` exporters),
//!   guaranteed inert: enabling it changes no simulation output.
//!
//! ## Quickstart
//!
//! ```
//! use waypart::core::runner::{Runner, RunnerConfig};
//! use waypart::core::policy::PartitionPolicy;
//! use waypart::workloads::registry;
//!
//! // A scaled-down machine + workloads for fast experimentation.
//! let runner = Runner::new(RunnerConfig::test());
//! let fg = registry::by_name("471.omnetpp").expect("registered");
//! let bg = registry::by_name("459.GemsFDTD").expect("registered");
//!
//! let solo = runner.run_solo(&fg, 4, 12);
//! let pair = runner.run_pair_endless_bg(&fg, &bg, PartitionPolicy::Biased { fg_ways: 9 });
//! let slowdown = pair.fg_cycles as f64 / solo.cycles as f64;
//! assert!(slowdown < 2.0);
//! ```
//!
//! See `examples/` for full scenarios and `DESIGN.md` / `EXPERIMENTS.md`
//! for the experiment inventory and paper-vs-measured results.

pub use waypart_analysis as analysis;
pub use waypart_core as core;
pub use waypart_energy as energy;
pub use waypart_experiments as experiments;
pub use waypart_perfmon as perfmon;
pub use waypart_sim as sim;
pub use waypart_telemetry as telemetry;
pub use waypart_workloads as workloads;
