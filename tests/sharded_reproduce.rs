//! Sharded execution must be invisible in the artifacts (DESIGN.md §5f).
//!
//! Two properties back the `reproduce --shard K/N` / `--jobs N` /
//! `--merge` protocol:
//!
//! 1. **Exact cover.** For every shard count `n`, the key-hash partition
//!    assigns each run to exactly one worker — no run is dropped and no
//!    run is owned twice. Checked both over arbitrary hashes (proptest)
//!    and over the *real* key set a figure pipeline records in the run
//!    cache.
//! 2. **Byte identity.** A 2-shard concurrent pass over one shared cache
//!    renders the same fig12 artifact, byte for byte, as a single
//!    process — and a warm merge-style replay over the populated cache
//!    reproduces it again with zero new simulations.

use std::time::Duration;

use proptest::prelude::*;
use waypart_core::runner::RunnerConfig;
use waypart_core::sweep::ShardSpec;
use waypart_experiments::fleet::{self, WorkerState};
use waypart_experiments::{fig12, Lab};
use waypart_telemetry::progress;

fn tmp_dir(label: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("waypart-shardtest-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn two_shard_fig12_is_byte_identical_and_warm_replay_simulates_nothing() {
    let dir = tmp_dir("fig12");
    let cfg = RunnerConfig::test();

    // Reference: one in-memory lab simulates the whole grid.
    let reference_lab = Lab::new(cfg.clone());
    let reference = fig12::run(&reference_lab).render();
    let grid = reference_lab.cache_stats().misses;
    assert!(grid > 0, "fig12 must simulate something cold");

    // Two concurrent workers over one shared persistent cache, each
    // owning half the key space (long grace: both stay live, so no
    // takeovers and no duplicated work).
    let handles: Vec<_> = (1..=2u32)
        .map(|index| {
            let dir = dir.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let lab = Lab::persistent_at(cfg, dir)
                    .with_shard(ShardSpec { index, count: 2 })
                    .with_wait_grace(Duration::from_secs(120));
                (fig12::run(&lab).render(), lab.cache_stats(), lab.shard_stats())
            })
        })
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let mut simulated = 0;
    for (text, cache, shard) in &outcomes {
        assert_eq!(text, &reference, "sharded fig12 must be byte-identical");
        assert_eq!(shard.takeovers, 0, "live peers must not trigger takeovers");
        simulated += cache.misses;
    }
    assert_eq!(simulated, grid, "the two slices together must cover the grid exactly once");
    assert!(
        outcomes.iter().all(|(_, c, _)| c.misses < grid),
        "one worker simulated the whole grid — the partition did not split it"
    );

    // Warm replay (what `--merge` does before folding spools): a fresh
    // unsharded lab over the populated cache renders the same bytes
    // without a single new simulation.
    let warm = Lab::persistent_at(cfg, dir.clone());
    assert_eq!(fig12::run(&warm).render(), reference, "warm replay must be byte-identical");
    let stats = warm.cache_stats();
    assert_eq!(stats.misses, 0, "warm replay must not simulate");
    assert_eq!(stats.disk_hits, grid, "every run must replay from the shared disk cache");

    // Exact cover over the *real* recorded key set: for several shard
    // counts, each key the pipeline touched belongs to exactly one
    // worker (the property the concurrent pass above relies on).
    let keys = warm.cache().seen_keys();
    assert_eq!(keys.len() as u64, grid, "lookup path must record every key it sees");
    for n in [1u32, 2, 3, 4, 7, 16] {
        for key in &keys {
            let h = warm.cache().key_hash(key);
            let owners =
                (1..=n).filter(|&k| ShardSpec { index: k, count: n }.owns_hash(h)).count();
            assert_eq!(owners, 1, "key `{key}` must have exactly one owner of {n} shards");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_worker_is_flagged_stalled_before_the_takeover_grace() {
    let spool = tmp_dir("stall-spool");

    // Worker 1 is live: a real heartbeat writing fresh snapshots.
    let hb = progress::start_heartbeat(&spool.join("1-of-2"), "1-of-2", Duration::from_millis(50))
        .expect("start heartbeat");

    // Worker 2 was kill -9'd 40 s ago: its last snapshot says `done:
    // false` and nothing has refreshed the stamp since. (A clean exit
    // would have written a final `done: true` snapshot via Drop.)
    let dead_dir = spool.join("2-of-2");
    std::fs::create_dir_all(&dead_dir).unwrap();
    let aged = progress::unix_now_ms() - 40_000;
    let line = format!(
        "{{\"record\":\"status\",\"worker\":\"2-of-2\",\"phase\":\"fig12\",\
         \"runs_done\":5,\"runs_total\":20,\"mem_hits\":2,\"disk_hits\":1,\"misses\":2,\
         \"waits\":0,\"takeovers\":0,\"claims_held\":1,\"ns_per_access\":null,\
         \"done\":false,\"at_unix_ms\":{aged}}}"
    );
    std::fs::write(dead_dir.join("status.json"), line).unwrap();

    let fleet = fleet::scan_fleet(&spool).expect("scan fleet");
    assert_eq!(fleet.len(), 2);
    let now = progress::unix_now_ms();
    assert_eq!(
        fleet[0].state(now, fleet::DEFAULT_STALE_SECS),
        WorkerState::Running,
        "live worker must scan as RUNNING"
    );
    assert_eq!(
        fleet[1].state(now, fleet::DEFAULT_STALE_SECS),
        WorkerState::Stalled,
        "a killed worker's aging heartbeat must scan as STALLED"
    );
    // The stall flag must fire well before a peer may take over the dead
    // worker's claims (Lab's default wait grace is 120 s): an operator
    // watching `status` sees the death first.
    assert!(fleet::DEFAULT_STALE_SECS < 120.0);
    // One live worker is exactly the quantity `--merge` refuses on.
    assert_eq!(fleet::live_workers(&fleet, now, fleet::DEFAULT_STALE_SECS), 1);

    // And once the live worker finishes cleanly, nothing is live: the
    // final snapshot flips `done` and the merge may proceed.
    hb.finish();
    let fleet = fleet::scan_fleet(&spool).expect("rescan fleet");
    let now = progress::unix_now_ms();
    assert_eq!(fleet[0].state(now, fleet::DEFAULT_STALE_SECS), WorkerState::Done);
    assert_eq!(fleet::live_workers(&fleet, now, fleet::DEFAULT_STALE_SECS), 0);
    let _ = std::fs::remove_dir_all(&spool);
}

proptest! {
    // Pure form of the cover property: any hash, any shard count ≤ 32 —
    // exactly one owner, and `partition` keeps slices disjoint and
    // jointly exhaustive.
    #[test]
    fn shard_partition_is_a_disjoint_exact_cover(
        hashes in proptest::collection::vec(any::<u64>(), 0..200),
        n in 1u32..=32,
    ) {
        let mut covered = 0usize;
        for index in 1..=n {
            let spec = ShardSpec { index, count: n };
            let (mine, rest) = spec.partition(hashes.clone(), |&h| h);
            prop_assert_eq!(mine.len() + rest.len(), hashes.len());
            prop_assert!(mine.iter().all(|&h| spec.owns_hash(h)));
            prop_assert!(rest.iter().all(|&h| !spec.owns_hash(h)));
            covered += mine.len();
        }
        // Summing slice sizes equals the grid size iff no hash is owned
        // twice (with the per-slice disjointness above) or dropped.
        prop_assert_eq!(covered, hashes.len());
    }
}
