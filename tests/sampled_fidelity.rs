//! Error-bound and determinism contract for `--fidelity sampled`.
//!
//! Sampled mode trades exactness for speed: fast-forward quanta replay
//! each thread's most recent detailed rates instead of walking the
//! hierarchy. The mode is only useful if the sampled headline numbers
//! stay close to the exact ones, so this test pins the bound at test
//! scale: mean MPKI across the headline pair must be within 2% of the
//! exact run, and repeating the sampled run must be bit-identical
//! (the schedule is deterministic, not randomized).

use waypart::core::policy::PartitionPolicy;
use waypart::core::runner::{FidelityMode, PairResult, Runner, RunnerConfig};
use waypart::workloads::registry;

fn run_pair(fidelity: FidelityMode) -> PairResult {
    let mut cfg = RunnerConfig::test();
    cfg.fidelity = fidelity;
    let runner = Runner::new(cfg);
    let fg = registry::by_name("canneal").expect("registered");
    let bg = registry::by_name("462.libquantum").expect("registered");
    runner.run_pair_endless_bg(&fg, &bg, PartitionPolicy::Biased { fg_ways: 8 })
}

fn rel_err(sampled: f64, exact: f64) -> f64 {
    if exact == 0.0 {
        sampled.abs()
    } else {
        (sampled - exact).abs() / exact
    }
}

#[test]
fn sampled_mpki_within_two_percent_of_exact() {
    let exact = run_pair(FidelityMode::Exact);
    let sampled = run_pair(FidelityMode::sampled_default());

    let err = rel_err(sampled.fg_counters.mpki(), exact.fg_counters.mpki());
    assert!(
        err <= 0.02,
        "sampled fg MPKI off by {:.2}% (sampled {:.4} vs exact {:.4}) — \
         exceeds the 2% bound; retune the detail:skip schedule",
        err * 100.0,
        sampled.fg_counters.mpki(),
        exact.fg_counters.mpki(),
    );

    // IPC is reported alongside MPKI in the error bars; hold it to a
    // looser sanity bound so the headline plot stays meaningful.
    let ipc_err = rel_err(sampled.fg_counters.ipc(), exact.fg_counters.ipc());
    assert!(
        ipc_err <= 0.10,
        "sampled fg IPC off by {:.2}% (sampled {:.4} vs exact {:.4})",
        ipc_err * 100.0,
        sampled.fg_counters.ipc(),
        exact.fg_counters.ipc(),
    );
}

#[test]
fn sampled_runs_are_deterministic() {
    let a = run_pair(FidelityMode::sampled_default());
    let b = run_pair(FidelityMode::sampled_default());
    assert_eq!(a.fg_counters, b.fg_counters, "sampled rerun diverged (fg counters)");
    assert_eq!(a.fg_cycles, b.fg_cycles, "sampled rerun diverged (fg cycles)");
    assert_eq!(a.bg_instructions, b.bg_instructions, "sampled rerun diverged (bg instructions)");
}
