//! The trend page is a pure function of its inputs — goldenable.
//!
//! `report --history` must render the same bytes for the same history on
//! every machine: no timestamps, no randomness, no environment reads.
//! This test renders the committed fixture history + verdicts and
//! compares against the committed golden HTML byte-for-byte. Regenerate
//! after an intentional layout change with:
//!
//! ```text
//! WAYPART_UPDATE_GOLDEN=1 cargo test --test trend_golden
//! ```

use waypart_experiments::trend;

const HISTORY: &str = include_str!("fixtures/trend_history.jsonl");
const VERDICTS: &str = include_str!("fixtures/trend_verdicts.jsonl");
const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/trend_golden.html");

fn render_fixture() -> String {
    let sessions = trend::parse_history(HISTORY).expect("fixture history parses");
    let verdicts = trend::parse_verdicts(VERDICTS).expect("fixture verdicts parse");
    trend::render_trend_html(&sessions, &verdicts)
}

#[test]
fn trend_page_matches_committed_golden() {
    let html = render_fixture();
    if std::env::var_os("WAYPART_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &html).expect("update trend golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect(
        "missing tests/fixtures/trend_golden.html — regenerate with WAYPART_UPDATE_GOLDEN=1",
    );
    assert_eq!(
        html, golden,
        "trend page drifted from the committed golden; if the change is intentional, \
         regenerate with WAYPART_UPDATE_GOLDEN=1 cargo test --test trend_golden"
    );
}

#[test]
fn trend_page_is_self_contained_and_annotated() {
    let html = render_fixture();
    // Same rules `report --check` enforces: no external references or
    // scripts, and real data cells rendered.
    for banned in ["http://", "https://", "<script", "<link", "@import"] {
        assert!(!html.contains(banned), "trend page contains `{banned}`");
    }
    let cells: u64 = html
        .match_indices("data-cells=\"")
        .filter_map(|(i, pat)| {
            html[i + pat.len()..].split('"').next().and_then(|n| n.parse::<u64>().ok())
        })
        .sum();
    assert!(cells > 0, "trend page rendered no data cells");
    // Both hosts segment into their own panels, and the sentry verdicts
    // annotate the page.
    assert!(html.contains("boxa") && html.contains("boxb"), "host segmentation missing");
    assert!(html.contains("PASS"), "pass badge missing");
    assert!(html.contains("REGRESSION"), "regression badge missing");
    assert!(html.contains("data-kind=\"trend\""), "trend page marker missing");
}
