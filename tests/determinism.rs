//! End-to-end determinism: identical configurations reproduce identical
//! measurements, including under co-scheduling and the dynamic controller.

use waypart::core::dynamic::DynamicConfig;
use waypart::core::policy::PartitionPolicy;
use waypart::core::runner::{Runner, RunnerConfig};
use waypart::workloads::registry;

#[test]
fn co_scheduled_runs_are_bit_identical() {
    let fg = registry::by_name("canneal").expect("registered");
    let bg = registry::by_name("459.GemsFDTD").expect("registered");
    let run = || {
        let runner = Runner::new(RunnerConfig::test());
        runner.run_pair_endless_bg(&fg, &bg, PartitionPolicy::Fair)
    };
    let a = run();
    let b = run();
    assert_eq!(a.fg_cycles, b.fg_cycles);
    assert_eq!(a.fg_counters, b.fg_counters);
    assert_eq!(a.bg_instructions, b.bg_instructions);
    assert_eq!(a.energy, b.energy);
    assert_eq!(a.fg_mpki.points(), b.fg_mpki.points());
}

#[test]
fn dynamic_runs_are_bit_identical() {
    let fg = registry::by_name("429.mcf").expect("registered");
    let bg = registry::by_name("dedup").expect("registered");
    let run = || {
        let runner = Runner::new(RunnerConfig::test());
        runner.run_pair_dynamic(&fg, &bg, DynamicConfig::paper())
    };
    let a = run();
    let b = run();
    assert_eq!(a.fg_cycles, b.fg_cycles);
    assert_eq!(a.fg_ways_trace, b.fg_ways_trace);
    assert_eq!(a.reallocations, b.reallocations);
}

#[test]
fn different_seeds_differ() {
    let app = registry::by_name("fop").expect("registered");
    let mut cfg = RunnerConfig::test();
    let a = Runner::new(cfg.clone()).run_solo(&app, 4, 12);
    cfg.seed ^= 0xDEAD_BEEF;
    let b = Runner::new(cfg).run_solo(&app, 4, 12);
    // Same model, different traffic realization: counters must differ in
    // detail while staying statistically close.
    assert_ne!(a.counters, b.counters);
    let ratio = a.cycles as f64 / b.cycles as f64;
    assert!((0.9..=1.1).contains(&ratio), "seed changed runtime by {ratio:.3}x");
}
