//! Per-figure smoke tests on reduced application subsets: each figure's
//! regenerator runs end-to-end and reproduces its panel's defining claim.

use waypart::core::runner::RunnerConfig;
use waypart::experiments::*;

fn lab() -> Lab {
    Lab::new(RunnerConfig::test())
}

#[test]
fn fig1_suites_order_as_in_paper() {
    // §3.1: PARSEC is clearly the most scalable suite; SPEC is serial.
    let lab = lab();
    let f1 = fig1::run_subset(&lab, Some(&["streamcluster", "x264", "h2", "462.libquantum"]));
    let parsec_peak = f1.curve("x264").unwrap().speedups.iter().cloned().fold(0.0, f64::max);
    let dacapo_low_peak = f1.curve("h2").unwrap().speedups.iter().cloned().fold(0.0, f64::max);
    let spec_peak = f1.curve("462.libquantum").unwrap().speedups.iter().cloned().fold(0.0, f64::max);
    assert!(parsec_peak > 3.0, "x264 peak {parsec_peak:.2}");
    assert!(dacapo_low_peak < 2.0, "h2 peak {dacapo_low_peak:.2}");
    assert!(spec_peak < 1.1, "libquantum peak {spec_peak:.2}");
}

#[test]
fn fig2_archetype_curves() {
    let lab = lab();
    let f2 = fig2::run_for(&lab, &["tomcat"], &[4]);
    let tomcat = f2.curve("tomcat", 4).unwrap();
    // Saturated utility: big early gains, then a flat tail.
    let early_gain = tomcat.times[2] as f64 / tomcat.times[7] as f64;
    let tail_gain = tomcat.times[9] as f64 / tomcat.times[11] as f64;
    assert!(early_gain > 1.03, "tomcat early gain {early_gain:.3}");
    assert!(tail_gain < 1.02, "tomcat tail gain {tail_gain:.3} should be flat");
}

#[test]
fn fig6_energy_follows_runtime() {
    // §4: "performance improvements translate directly to energy
    // improvements" — race-to-halt. Across dedup's allocation space the
    // wall-energy-optimal point must also be (near-)runtime-optimal.
    let lab = lab();
    let f6 = fig6::run_for(&lab, &["dedup"]);
    let space = f6.space("dedup").unwrap();
    let opt = space.optimal();
    let fastest = space.points.iter().min_by_key(|p| p.cycles).unwrap();
    assert!(
        opt.cycles as f64 <= fastest.cycles as f64 * 1.15,
        "energy optimum ({} cycles) far from runtime optimum ({})",
        opt.cycles,
        fastest.cycles
    );
}

#[test]
fn fig7_contour_has_optimal_plateau() {
    // §4: "many resource allocations achieve near optimal execution
    // time" — the level-0 contour band must contain several cells.
    let lab = lab();
    let f6 = fig6::run_for(&lab, &["ferret"]);
    let f7 = fig7::run(&f6);
    let g = f7.grid("ferret").unwrap();
    let near_optimal = (1..=8)
        .flat_map(|t| (1..=12).map(move |w| (t, w)))
        .filter(|&(t, w)| g.level(t, w) <= 1)
        .count();
    assert!(near_optimal >= 4, "only {near_optimal} near-optimal allocations");
}

#[test]
fn fig8_sensitivity_and_aggression_are_directional() {
    let lab = lab();
    let f8 = fig8::run_subset(&lab, Some(&["462.libquantum", "swaptions", "stream_uncached"]));
    // libquantum is sensitive; swaptions is not; the hog is the aggressor.
    let lq_under_hog = f8.cell("462.libquantum", "stream_uncached").unwrap();
    let sw_under_hog = f8.cell("swaptions", "stream_uncached").unwrap();
    assert!(lq_under_hog > 1.15, "libquantum under hog {lq_under_hog:.3}");
    assert!(sw_under_hog < 1.05, "swaptions under hog {sw_under_hog:.3}");
    assert!(f8.aggression("stream_uncached").unwrap() > f8.aggression("swaptions").unwrap());
}

#[test]
fn fig12_dynamic_tracks_mcf_phases() {
    let lab = lab();
    let f12 = fig12::run(&lab);
    // Static allocations order by capacity.
    assert!(f12.series(2).unwrap().mean() > f12.series(9).unwrap().mean());
    // The dynamic run visits both generous and lean allocations.
    let ways: Vec<usize> = f12.dynamic_ways.iter().map(|&(_, w)| w).collect();
    let max_w = *ways.iter().max().unwrap();
    let min_w = *ways.iter().min().unwrap();
    assert!(max_w >= 10, "controller never expanded (max {max_w})");
    assert!(min_w <= 6, "controller never reclaimed (min {min_w})");
}

#[test]
fn table2_capacity_overprovisioning() {
    // §3.2's central observation: the LLC is overprovisioned — a large
    // fraction of apps reach (near-)peak performance at half the cache.
    let lab = lab();
    let t2 = table2::run(&lab);
    let at_half = t2.fraction_satisfied_at(0.5);
    assert!(at_half > 0.35, "only {:.0}% of apps satisfied at half the LLC", at_half * 100.0);
}
