//! Golden counter fingerprints: a short solo run and a short pair run at
//! test scale must reproduce these exact counter values.
//!
//! Purpose: the hot-path layout of the hierarchy simulator is fair game
//! for optimization, but *semantics are frozen* — any change that alters
//! replacement decisions, prefetch issue order, RNG draw order, or cycle
//! accounting shows up here as a diff. If this test fails, either revert
//! the semantic change or (if it is a deliberate model change) update the
//! golden values AND bump `runcache::SCHEMA_VERSION` so stale cached runs
//! are not reused (see DESIGN.md).

use waypart::core::policy::PartitionPolicy;
use waypart::core::runner::{Runner, RunnerConfig};
use waypart::sim::counters::HwCounters;
use waypart::workloads::registry;

fn fingerprint(c: &HwCounters) -> String {
    format!(
        "i={} c={} l1a={} l1m={} l2m={} llca={} llcm={} wb={} pf={} pfh={} nt={}",
        c.instructions,
        c.cycles,
        c.l1_accesses,
        c.l1_misses,
        c.l2_misses,
        c.llc_accesses,
        c.llc_misses,
        c.dram_writebacks,
        c.prefetches_issued,
        c.prefetch_hits,
        c.non_temporal,
    )
}

#[test]
fn solo_run_matches_golden_counters() {
    let app = registry::by_name("429.mcf").expect("registered");
    let runner = Runner::new(RunnerConfig::test());
    let r = runner.run_solo(&app, 4, 12);
    let got = format!("cycles={} {}", r.cycles, fingerprint(&r.counters));
    assert_eq!(
        got, GOLDEN_SOLO,
        "solo golden fingerprint changed — engine semantics diverged"
    );
}

#[test]
fn pair_run_matches_golden_counters() {
    let fg = registry::by_name("canneal").expect("registered");
    let bg = registry::by_name("462.libquantum").expect("registered");
    let runner = Runner::new(RunnerConfig::test());
    let r = runner.run_pair_endless_bg(&fg, &bg, PartitionPolicy::Biased { fg_ways: 8 });
    let got = format!(
        "fg_cycles={} bg_i={} {}",
        r.fg_cycles,
        r.bg_instructions,
        fingerprint(&r.fg_counters)
    );
    assert_eq!(
        got, GOLDEN_PAIR,
        "pair golden fingerprint changed — engine semantics diverged"
    );
}

const GOLDEN_SOLO: &str = "cycles=8720000 i=2929688 c=8702403 l1a=976556 l1m=609818 \
     l2m=182976 llca=182976 llcm=1151 wb=286 pf=478216 pfh=0 nt=0";
const GOLDEN_PAIR: &str = "fg_cycles=2240000 bg_i=1021381 i=2715628 c=7262038 l1a=905330 \
     l1m=306836 l2m=103391 llca=103391 llcm=2251 wb=940 pf=566609 pfh=0 nt=0";
