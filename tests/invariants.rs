//! Cross-crate property tests on the simulator's architectural invariants.

use proptest::prelude::*;
use waypart::sim::addr::LineAddr;
use waypart::sim::config::MachineConfig;
use waypart::sim::dram::DramModel;
use waypart::sim::hierarchy::Hierarchy;
use waypart::sim::msr::PrefetcherMask;
use waypart::sim::ring::RingModel;
use waypart::sim::stream::Access;
use waypart::sim::WayMask;

/// A randomized access for the property drivers.
#[derive(Debug, Clone)]
struct Op {
    core: usize,
    line: u64,
    asid: u16,
    write: bool,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..4, 0u64..4096, 0u16..3, any::<bool>())
        .prop_map(|(core, line, asid, write)| Op { core, line, asid, write })
}

fn drive(ops: &[Op], masks: [WayMask; 4], prefetch: bool) -> (Hierarchy, MachineConfig) {
    let cfg = MachineConfig::scaled(64);
    let mut h = Hierarchy::new(&cfg);
    let mut ring = RingModel::new(cfg.ring);
    let mut dram = DramModel::new(cfg.dram);
    let pf = if prefetch { PrefetcherMask::all_enabled() } else { PrefetcherMask::all_disabled() };
    for op in ops {
        let access = Access {
            line: LineAddr::in_space(op.asid, op.line),
            write: op.write,
            pc: (op.line % 97) as u32,
            non_temporal: false,
            mlp: 1.0,
        };
        h.access(op.core, &access, masks[op.core], pf, &mut ring, &mut dram);
    }
    (h, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Inclusion: every line resident in any L1 or L2 must also be in the
    /// LLC — under arbitrary interleavings of cores, address spaces,
    /// writes, masks, and prefetching.
    #[test]
    fn llc_inclusion_holds(ops in proptest::collection::vec(op_strategy(), 1..600), prefetch in any::<bool>()) {
        let masks = [
            WayMask::contiguous(0, 6),
            WayMask::contiguous(0, 6),
            WayMask::contiguous(6, 6),
            WayMask::contiguous(6, 6),
        ];
        let (h, cfg) = drive(&ops, masks, prefetch);
        for core in 0..cfg.cores {
            for (_, _, line, _, _) in h.l1(core).iter_entries() {
                prop_assert!(h.llc().contains(line), "L1 line {line} missing from LLC");
            }
            for (_, _, line, _, _) in h.l2(core).iter_entries() {
                prop_assert!(h.llc().contains(line), "L2 line {line} missing from LLC");
            }
        }
    }

    /// Way-mask confinement: with static masks, every LLC entry filled by
    /// a core sits in a way that core's mask allows.
    #[test]
    fn llc_fills_respect_masks(ops in proptest::collection::vec(op_strategy(), 1..600)) {
        let masks = [
            WayMask::contiguous(0, 3),
            WayMask::contiguous(3, 3),
            WayMask::contiguous(6, 3),
            WayMask::contiguous(9, 3),
        ];
        let (h, _) = drive(&ops, masks, false);
        for (_, way, line, owner, _) in h.llc().iter_entries() {
            prop_assert!(
                masks[owner as usize].allows(way),
                "line {line} filled by core {owner} sits in way {way} outside its mask"
            );
        }
    }

    /// Capacity: the LLC never holds more valid lines than its geometry
    /// allows, and per-core occupancy under a private mask never exceeds
    /// that mask's share.
    #[test]
    fn occupancy_bounded(ops in proptest::collection::vec(op_strategy(), 1..800)) {
        let masks = [
            WayMask::contiguous(0, 3),
            WayMask::contiguous(3, 3),
            WayMask::contiguous(6, 3),
            WayMask::contiguous(9, 3),
        ];
        let (h, cfg) = drive(&ops, masks, false);
        let capacity = cfg.llc.size_bytes / cfg.line_bytes;
        prop_assert!(h.llc_occupancy() <= capacity);
        for core in 0..cfg.cores {
            prop_assert!(h.llc_occupancy_of(core) <= capacity * 3 / 12);
        }
    }

    /// The dynamic controller's allocation always stays within its bounds
    /// and always partitions the cache exactly, for any MPKI input.
    #[test]
    fn dynamic_controller_bounds(mpkis in proptest::collection::vec(0.0f64..200.0, 1..300)) {
        use waypart::core::dynamic::{DynamicConfig, DynamicPartitioner};
        let cfg = DynamicConfig::paper();
        let mut ctl = DynamicPartitioner::new(cfg);
        for m in mpkis {
            ctl.observe(m);
            let r = ctl.masks();
            prop_assert!(r.fg.count() >= cfg.min_fg_ways && r.fg.count() <= cfg.max_fg_ways);
            prop_assert_eq!(r.fg.count() + r.bg.count(), cfg.total_ways);
            prop_assert!(!r.fg.overlaps(r.bg));
        }
    }

    /// Phase detector: never panics and never reports a phase start twice
    /// in a row without an intervening close, for arbitrary inputs.
    #[test]
    fn phase_detector_state_machine(mpkis in proptest::collection::vec(0.0f64..500.0, 1..300)) {
        use waypart::core::phase::{PhaseDetector, PhaseEvent};
        let mut d = PhaseDetector::default();
        let mut last_was_start = false;
        for m in mpkis {
            let e = d.observe(m);
            if e == PhaseEvent::PhaseStart {
                prop_assert!(!last_was_start, "phase start without close");
            }
            last_was_start = e == PhaseEvent::PhaseStart;
        }
    }
}
