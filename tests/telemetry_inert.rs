//! Telemetry must be *observation only*: compiling the `telemetry`
//! feature in AND attaching live sinks must not change a single byte of
//! simulation output.
//!
//! This file re-runs the golden-fingerprint runs from
//! `golden_fingerprint.rs` with the feature enabled and a collecting sink
//! installed, and asserts the fingerprints still match the same golden
//! strings those tests pin (which CI also checks with the feature off).
//! If this test fails while `golden_fingerprint` passes, some
//! instrumentation point leaked into simulation state — e.g. a tally
//! probe that perturbs replacement or an observe() hook that consumes an
//! RNG draw.

#![cfg(feature = "telemetry")]

use std::sync::Arc;

use waypart::core::dynamic::DynamicConfig;
use waypart::core::policy::PartitionPolicy;
use waypart::core::runner::{Runner, RunnerConfig};
use waypart::sim::counters::HwCounters;
use waypart::telemetry::sinks::{CollectingSink, MultiSink, SeriesSink};
use waypart::telemetry::{self, Event, EventKind};
use waypart::workloads::registry;

// Must stay literally identical to the constants in golden_fingerprint.rs
// (the feature-off run): one source of truth for "what the sim computes",
// two independent build configurations checking it.
const GOLDEN_SOLO: &str = "cycles=8720000 i=2929688 c=8702403 l1a=976556 l1m=609818 \
     l2m=182976 llca=182976 llcm=1151 wb=286 pf=478216 pfh=0 nt=0";
const GOLDEN_PAIR: &str = "fg_cycles=2240000 bg_i=1021381 i=2715628 c=7262038 l1a=905330 \
     l1m=306836 l2m=103391 llca=103391 llcm=2251 wb=940 pf=566609 pfh=0 nt=0";

fn fingerprint(c: &HwCounters) -> String {
    format!(
        "i={} c={} l1a={} l1m={} l2m={} llca={} llcm={} wb={} pf={} pfh={} nt={}",
        c.instructions,
        c.cycles,
        c.l1_accesses,
        c.l1_misses,
        c.l2_misses,
        c.llc_accesses,
        c.llc_misses,
        c.dram_writebacks,
        c.prefetches_issued,
        c.prefetch_hits,
        c.non_temporal,
    )
}

/// Runs `f` with a collecting sink AND a live aggregating [`SeriesSink`]
/// installed, returning (result, events, series sink). The aggregation
/// layer is the heaviest consumer (it folds every numeric field into
/// ring-buffer series), so inertness must hold with it attached too.
/// Serialized via a lock because the sink is process-global and the test
/// harness runs `#[test]`s concurrently within this binary.
fn with_sink<T>(f: impl FnOnce() -> T) -> (T, Vec<Event>, Arc<SeriesSink>) {
    use std::sync::Mutex;
    static GATE: Mutex<()> = Mutex::new(());
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let collect = Arc::new(CollectingSink::new());
    let series = Arc::new(SeriesSink::new());
    telemetry::set_sink(Arc::new(MultiSink::new(vec![collect.clone(), series.clone()])));
    let out = f();
    telemetry::clear_sink();
    (out, collect.take(), series)
}

#[test]
fn solo_golden_identical_with_live_sink() {
    let app = registry::by_name("429.mcf").expect("registered");
    let runner = Runner::new(RunnerConfig::test());
    let (r, events, series) = with_sink(|| runner.run_solo(&app, 4, 12));
    let got = format!("cycles={} {}", r.cycles, fingerprint(&r.counters));
    assert_eq!(got, GOLDEN_SOLO, "telemetry perturbed the solo run");
    // The aggregation layer must have folded events into series, and its
    // rendered records must satisfy the trace schema.
    assert!(series.series_count() > 0, "SeriesSink folded nothing");
    waypart::telemetry::schema::validate_jsonl(&series.render_jsonl())
        .expect("aggregate records validate");
    // The sink must actually have been live: a run span plus the
    // feature-gated tallies snapshot.
    assert!(events.iter().any(|e| e.name == "runner.run" && e.kind == EventKind::Begin));
    let tallies = events.iter().find(|e| e.name == "sim.tallies").expect("tallies snapshot");
    // Tallies must agree with the architectural counters they mirror.
    assert_eq!(
        tallies.get("llc_misses"),
        Some(&waypart::telemetry::FieldValue::U64(r.counters.llc_misses))
    );
}

#[test]
fn pair_golden_identical_with_live_sink() {
    let fg = registry::by_name("canneal").expect("registered");
    let bg = registry::by_name("462.libquantum").expect("registered");
    let runner = Runner::new(RunnerConfig::test());
    let (r, events, _series) =
        with_sink(|| runner.run_pair_endless_bg(&fg, &bg, PartitionPolicy::Biased { fg_ways: 8 }));
    let got = format!(
        "fg_cycles={} bg_i={} {}",
        r.fg_cycles,
        r.bg_instructions,
        fingerprint(&r.fg_counters)
    );
    assert_eq!(got, GOLDEN_PAIR, "telemetry perturbed the pair run");
    assert!(events.iter().any(|e| e.name == "runner.run" && e.kind == EventKind::End));
}

#[test]
fn dynamic_run_identical_with_and_without_sink() {
    // The dynamic controller is the most heavily instrumented path
    // (dyn.decision on every window). Run it bare, then with a sink, and
    // require bit-identical results — trace, counters, everything Debug
    // reaches.
    let fg = registry::by_name("429.mcf").expect("registered");
    let bg = registry::by_name("swaptions").expect("registered");
    let runner = Runner::new(RunnerConfig::test());
    let bare = runner.run_pair_dynamic(&fg, &bg, DynamicConfig::paper());
    let (observed, events, series) =
        with_sink(|| runner.run_pair_dynamic(&fg, &bg, DynamicConfig::paper()));
    assert_eq!(format!("{bare:?}"), format!("{observed:?}"), "sink changed the dynamic run");
    let decisions = events.iter().filter(|e| e.name == "dyn.decision").count();
    let reallocs = events.iter().filter(|e| e.name == "dyn.realloc").count();
    assert!(decisions > 0, "controller emitted no decisions");
    assert_eq!(reallocs as u64, observed.reallocations, "one dyn.realloc per reallocation");
    // The per-window occupancy counters feed the dashboard's heatmap; the
    // dynamic path must produce them and the sink must fold them.
    assert!(events.iter().any(|e| e.name == "sim.occupancy"), "no occupancy windows emitted");
    assert!(
        series.render_jsonl().contains("sim.occupancy.occ_c0"),
        "occupancy not folded into a series"
    );
}
