//! Property harness: the batched access engine is observationally
//! identical to the scalar one.
//!
//! The machine's hot path buffers bulk-generated events per hardware
//! thread (`AccessStream::fill`) and drains them through the SIMD-probed
//! hierarchy; `Machine::set_batching(false)` forces the original
//! one-`next_event`-per-access path, which serves as the oracle here.
//! Random way masks, hardware-thread placements (including sibling
//! hyperthreads sharing a core), stream shapes, and mixed synthetic +
//! application workloads must all produce bit-equal cycle counts and
//! hardware counters under both engines.

use proptest::prelude::*;
use waypart::sim::config::MachineConfig;
use waypart::sim::machine::Machine;
use waypart::sim::stream::SequentialStream;
use waypart::sim::WayMask;
use waypart::workloads::registry;
use waypart::workloads::Scale;

/// Application models to mix in: one pointer-chaser, one streamer, one
/// compute-bound — distinct event shapes (gaps, MLP, phases).
const APPS: [&str; 3] = ["429.mcf", "462.libquantum", "swaptions"];

/// What one hardware thread runs.
#[derive(Debug, Clone)]
enum Work {
    /// `SequentialStream` over `ws_lines` lines, `accesses` long.
    Synthetic { ws_lines: u64, accesses: u64, gap: u32 },
    /// Thread 0 of `APPS[app]` at test scale.
    App { app: usize, seed: u64 },
}

/// Placement of one attached thread.
#[derive(Debug, Clone)]
struct Slot {
    ht: usize,
    asid: u16,
    work: Work,
}

fn work_strategy() -> impl Strategy<Value = Work> {
    // The vendored proptest has no `prop_oneof`; draw a discriminant and
    // both payloads, keep one. Kind 0–2 = synthetic, 3 = application
    // model (rarer because app runs dominate wall time).
    (0u8..4, (1u64..5_000, 50u64..3_000, 0u32..64), (0usize..APPS.len(), 0u64..4)).prop_map(
        |(kind, (ws_lines, accesses, gap), (app, seed))| {
            if kind < 3 {
                Work::Synthetic { ws_lines, accesses, gap }
            } else {
                Work::App { app, seed }
            }
        },
    )
}

/// Up to 8 slots on distinct hardware threads (the scaled machine has
/// 4 cores × 2 hyperthreads); the boolean vector picks which threads are
/// populated, so sibling-hyperthread contention appears in most cases.
fn slots_strategy() -> impl Strategy<Value = Vec<Slot>> {
    proptest::collection::vec((any::<bool>(), 1u16..4, work_strategy()), 8..9).prop_map(|v| {
        let mut slots: Vec<Slot> = v
            .into_iter()
            .enumerate()
            .filter(|(_, (on, _, _))| *on)
            .map(|(ht, (_, asid, work))| Slot { ht, asid, work })
            .collect();
        if slots.is_empty() {
            slots.push(Slot {
                ht: 0,
                asid: 1,
                work: Work::Synthetic { ws_lines: 64, accesses: 500, gap: 4 },
            });
        }
        slots
    })
}

/// A random contiguous way mask per core within the LLC's 12 ways.
fn masks_strategy() -> impl Strategy<Value = Vec<WayMask>> {
    proptest::collection::vec((0usize..11, 1usize..12), 4..5).prop_map(|v| {
        v.into_iter().map(|(start, count)| WayMask::contiguous(start, count.min(12 - start))).collect()
    })
}

fn build(slots: &[Slot], masks: &[WayMask], batching: bool) -> Machine {
    let cfg = MachineConfig::scaled(64);
    let mut machine = Machine::new(cfg);
    machine.set_batching(batching);
    for (core, mask) in masks.iter().enumerate() {
        machine.set_way_mask(core, *mask);
    }
    for slot in slots {
        match &slot.work {
            Work::Synthetic { ws_lines, accesses, gap } => machine.attach(
                slot.ht,
                slot.asid,
                Box::new(SequentialStream::new(slot.asid, *ws_lines, *accesses, *gap)),
            ),
            Work::App { app, seed } => {
                let spec = registry::by_name(APPS[*app]).expect("registered");
                machine.attach(
                    slot.ht,
                    slot.asid,
                    Box::new(spec.thread_stream(1, 0, slot.asid, Scale::TEST, *seed)),
                );
            }
        }
    }
    machine
}

/// Drives `machine` for up to `quanta` quanta and snapshots everything
/// observable: cycle clock, per-thread counters, per-app aggregates and
/// completion, and LLC occupancy per core.
fn drive(mut machine: Machine, quanta: u64) -> String {
    let mut q = 0;
    while machine.any_active() && q < quanta {
        machine.run_quantum();
        q += 1;
    }
    let cfg = machine.config();
    let per_ht: Vec<_> =
        (0..cfg.cores * cfg.threads_per_core).map(|ht| *machine.counters(ht)).collect();
    let per_app: Vec<_> =
        (1u16..4).map(|asid| (machine.app_counters(asid), machine.app_done(asid))).collect();
    let occ: Vec<_> = (0..cfg.cores).map(|c| machine.llc_occupancy_of(c)).collect();
    format!("now={} per_ht={per_ht:?} per_app={per_app:?} occ={occ:?}", machine.now())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched and scalar engines agree on every counter, the cycle
    /// clock, completion, and cache occupancy for arbitrary placements,
    /// masks, and workloads.
    #[test]
    fn batched_engine_matches_scalar_oracle(
        slots in slots_strategy(),
        masks in masks_strategy(),
        quanta in 8u64..40,
    ) {
        let batched = drive(build(&slots, &masks, true), quanta);
        let scalar = drive(build(&slots, &masks, false), quanta);
        prop_assert_eq!(batched, scalar);
    }
}
