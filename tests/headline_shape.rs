//! The capstone integration test: regenerate the consolidated experiments
//! (Figs 9–11, 13) over the six cluster representatives at test scale and
//! assert the paper's headline *shape* holds — who wins, in which
//! direction — per the reproduction contract in DESIGN.md §4.

use waypart::core::runner::RunnerConfig;
use waypart::experiments::{fig10, fig11, fig13, fig9, headline, Lab};

#[test]
fn headline_shape_holds() {
    let lab = Lab::new(RunnerConfig::test());
    let f9 = fig9::run(&lab);
    let f10 = fig10::run(&lab, &f9);
    let f11 = fig11::run(&f10);
    let f13 = fig13::run(&lab, &f9);
    let h = headline::run(&f9, &f10, &f11, &f13);

    let violations = h.shape_violations();
    assert!(violations.is_empty(), "headline shape violated:\n{}\n\n{}", violations.join("\n"), h.render());

    // Spot-check the headline magnitudes are in the paper's neighbourhood
    // (loose bands — the substrate is a simulator, not the testbed).
    assert!(
        h.biased_avg_slowdown < 1.10,
        "biased average slowdown {:.3} far from the paper's 1.02",
        h.biased_avg_slowdown
    );
    assert!(
        h.shared_worst_slowdown > 1.10,
        "shared worst-case slowdown {:.3} should show real degradation (paper: 1.345)",
        h.shared_worst_slowdown
    );
    assert!(
        h.dynamic_bg_peak > h.dynamic_bg_gain,
        "peak dynamic gain should exceed the mean"
    );
}
